"""The synchronous congested-clique simulator.

The engine advances ``n`` per-node protocol generators in lockstep.  In each
round every live generator emits an *outbox* — a mapping from destination
node id to :class:`~repro.core.message.Packet` — and receives the *inbox*
assembled from the previous round's sends.  The engine audits the model
constraints the paper assumes (Section 2):

* at most one packet per ordered node pair per round (``EdgeConflict``);
* at most ``capacity`` words per packet (``CapacityExceeded``);
* every word an integer polynomially bounded in ``n`` (``WordSizeViolation``).

Nodes may send to themselves (the paper explicitly allows this).

Protocol shape::

    def my_protocol(ctx: NodeContext, my_input) -> NodeGen:
        inbox = yield {}                      # round 1: send nothing
        inbox = yield {peer: packet(42)}      # round 2: one packet to peer
        return result                         # done; return value is output

All generators must finish within ``max_rounds`` (guard against livelock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from .context import NodeContext, SharedCache
from .errors import EdgeConflict, ModelViolation, ProtocolError
from .message import DEFAULT_CAPACITY, Packet, validate_packet
from .metrics import (
    MeterReport,
    OperationMeter,
    PhaseSpan,
    RunStats,
    collect_meters,
)

#: A per-node protocol: yields outboxes, receives inboxes, returns its output.
NodeGen = Generator[Dict[int, Packet], Dict[int, Packet], Any]

#: Factory building the protocol generator for one node.
ProgramFactory = Callable[[NodeContext], NodeGen]


@dataclass
class RunResult:
    """Outcome of one simulated protocol execution."""

    outputs: List[Any]
    stats: RunStats
    meters: Optional[MeterReport] = None
    shared_cache_hits: int = 0
    shared_cache_misses: int = 0

    @property
    def rounds(self) -> int:
        return self.stats.rounds

    def phase_table(self) -> Dict[str, int]:
        return self.stats.phase_table()


class CongestedClique:
    """A fully connected synchronous network of ``n`` nodes.

    Args:
        n: number of nodes (ids ``0..n-1``).
        capacity: words per packet (the model's O(log n) bits as a constant
            number of machine words).
        validate: audit every packet against the model (disable only for
            large-scale benchmarking where the audit dominates runtime).
        meter: create an :class:`OperationMeter` per node for Section-5
            computation accounting.
        verify_shared: run the shared-computation cache in verify mode
            (recompute on hit and assert determinism).
        max_rounds: abort if a protocol runs longer than this many rounds.
    """

    def __init__(
        self,
        n: int,
        capacity: int = DEFAULT_CAPACITY,
        validate: bool = True,
        meter: bool = False,
        verify_shared: bool = False,
        max_rounds: int = 10_000,
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.capacity = capacity
        self.validate = validate
        self.meter = meter
        self.verify_shared = verify_shared
        self.max_rounds = max_rounds

    def run(self, program_factory: ProgramFactory) -> RunResult:
        """Execute one protocol on all ``n`` nodes until every node returns."""
        n = self.n
        shared = SharedCache(verify_mode=self.verify_shared)
        meters: List[Optional[OperationMeter]] = [
            OperationMeter() if self.meter else None for _ in range(n)
        ]
        stats = RunStats(n=n)

        current_phase: List[Optional[PhaseSpan]] = [None]

        def phase_sink(name: str) -> None:
            span = current_phase[0]
            if span is not None and span.name == name:
                return
            new_span = PhaseSpan(name=name, start_round=stats.rounds)
            stats.phase_rounds.append(new_span)
            current_phase[0] = new_span

        contexts = [
            NodeContext(
                node_id=i,
                n=n,
                capacity=self.capacity,
                shared=shared,
                meter=meters[i],
                phase_sink=phase_sink,
            )
            for i in range(n)
        ]
        gens: List[Optional[NodeGen]] = [program_factory(ctx) for ctx in contexts]
        outputs: List[Any] = [None] * n
        done = [False] * n

        # Prime every generator: the first yielded value is the round-1 outbox.
        pending_outbox: List[Dict[int, Packet]] = [{} for _ in range(n)]
        for i in range(n):
            try:
                pending_outbox[i] = self._coerce_outbox(next(gens[i]), i)
            except StopIteration as stop:
                outputs[i] = stop.value
                done[i] = True
                gens[i] = None
                pending_outbox[i] = {}

        while not all(done):
            if stats.rounds >= self.max_rounds:
                raise ProtocolError(
                    f"protocol exceeded max_rounds={self.max_rounds}"
                )
            round_stats = stats.begin_round(stats.rounds)
            if current_phase[0] is not None:
                current_phase[0].rounds += 1

            # Collect and audit this round's traffic.
            inboxes: List[Dict[int, Packet]] = [{} for _ in range(n)]
            any_traffic = False
            for src in range(n):
                outbox = pending_outbox[src]
                for dst, pkt in outbox.items():
                    if self.validate:
                        validate_packet(pkt, n, self.capacity)
                    if dst in inboxes and dst in range(n):
                        if src in inboxes[dst]:
                            raise EdgeConflict(
                                f"node {src} sent two packets to {dst} in "
                                f"round {stats.rounds}"
                            )
                    inboxes[dst][src] = pkt
                    round_stats.record_packet(len(pkt))
                    any_traffic = True
            stats.commit_round(round_stats)

            # Deliver inboxes; collect next outboxes.
            for i in range(n):
                gen = gens[i]
                if gen is None:
                    if inboxes[i]:
                        raise ProtocolError(
                            f"packet delivered to finished node {i} in round "
                            f"{stats.rounds - 1}"
                        )
                    continue
                try:
                    pending_outbox[i] = self._coerce_outbox(
                        gen.send(inboxes[i]), i
                    )
                except StopIteration as stop:
                    outputs[i] = stop.value
                    done[i] = True
                    gens[i] = None
                    pending_outbox[i] = {}

            if not any_traffic and all(done):
                break

        meter_report = collect_meters(meters) if self.meter else None
        return RunResult(
            outputs=outputs,
            stats=stats,
            meters=meter_report,
            shared_cache_hits=shared.hits,
            shared_cache_misses=shared.misses,
        )

    def _coerce_outbox(self, raw: Any, src: int) -> Dict[int, Packet]:
        """Normalize a yielded outbox and check addressing."""
        if raw is None:
            return {}
        if not isinstance(raw, dict):
            raise ModelViolation(
                f"node {src} yielded {type(raw).__name__}, expected dict"
            )
        outbox: Dict[int, Packet] = {}
        for dst, pkt in raw.items():
            if not isinstance(dst, int) or not 0 <= dst < self.n:
                raise ModelViolation(
                    f"node {src} addressed invalid destination {dst!r}"
                )
            if isinstance(pkt, tuple):
                pkt = Packet(pkt)
            if not isinstance(pkt, Packet):
                raise ModelViolation(
                    f"node {src} sent non-packet {pkt!r} to {dst}"
                )
            outbox[dst] = pkt
        return outbox


def run_protocol(
    n: int,
    program_factory: ProgramFactory,
    capacity: int = DEFAULT_CAPACITY,
    **kwargs: Any,
) -> RunResult:
    """One-shot convenience wrapper around :class:`CongestedClique`."""
    return CongestedClique(n, capacity=capacity, **kwargs).run(program_factory)
