"""The synchronous congested-clique simulator facade.

The simulator advances ``n`` per-node protocol generators in lockstep.  In
each round every live generator emits an *outbox* — a mapping from
destination node id to :class:`~repro.core.message.Packet` — and receives
the *inbox* assembled from the previous round's sends.  The engine audits
the model constraints the paper assumes (Section 2):

* at most one packet per ordered node pair per round (structural: outboxes
  are keyed by destination; concurrent activities merge through
  :func:`repro.core.protocol.merge_outboxes`, which raises ``EdgeConflict``);
* at most ``capacity`` words per packet (``CapacityExceeded``);
* every word an integer polynomially bounded in ``n`` (``WordSizeViolation``).

Nodes may send to themselves (the paper explicitly allows this).

Protocol shape::

    def my_protocol(ctx: NodeContext, my_input) -> NodeGen:
        inbox = yield {}                      # round 1: send nothing
        inbox = yield {peer: packet(42)}      # round 2: one packet to peer
        return result                         # done; return value is output

All generators must finish within ``max_rounds`` (guard against livelock).

The round loop itself is pluggable: :class:`CongestedClique` delegates to an
:class:`~repro.core.engine.ExecutionEngine` (the fully-audited
``ReferenceEngine`` by default, or the throughput-oriented ``FastEngine``
via ``engine="fast"``).  See :mod:`repro.core.engine`.
"""

from __future__ import annotations

from typing import Any

from .engine import (
    EngineSpec,
    ExecutionEngine,
    NodeGen,
    ProgramFactory,
    RunResult,
    get_engine,
)
from .message import DEFAULT_CAPACITY

__all__ = [
    "CongestedClique",
    "NodeGen",
    "ProgramFactory",
    "RunResult",
    "run_protocol",
]


class CongestedClique:
    """A fully connected synchronous network of ``n`` nodes.

    Args:
        n: number of nodes (ids ``0..n-1``).
        capacity: words per packet (the model's O(log n) bits as a constant
            number of machine words).
        validate: audit packets against the model (disable only for
            large-scale benchmarking where the audit dominates runtime;
            with the fast engine this forces validation ``"off"``).
        meter: create an :class:`OperationMeter` per node for Section-5
            computation accounting.
        verify_shared: run the shared-computation cache in verify mode
            (recompute on hit and assert determinism).
        max_rounds: abort if a protocol runs longer than this many rounds.
        engine: round-loop driver — ``None`` for the fully-audited reference
            engine, a registered name (``"reference"``, ``"fast"``,
            ``"fast-audit"``, ``"fast-unchecked"``), or an
            :class:`~repro.core.engine.ExecutionEngine` instance.
    """

    def __init__(
        self,
        n: int,
        capacity: int = DEFAULT_CAPACITY,
        validate: bool = True,
        meter: bool = False,
        verify_shared: bool = False,
        max_rounds: int = 10_000,
        engine: EngineSpec = None,
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.capacity = capacity
        self.validate = validate
        self.meter = meter
        self.verify_shared = verify_shared
        self.max_rounds = max_rounds
        self.engine: ExecutionEngine = get_engine(engine)

    def run(self, program_factory: ProgramFactory) -> RunResult:
        """Execute one protocol on all ``n`` nodes until every node returns."""
        return self.engine.execute(self, program_factory)


def run_protocol(
    n: int,
    program_factory: ProgramFactory,
    capacity: int = DEFAULT_CAPACITY,
    **kwargs: Any,
) -> RunResult:
    """One-shot convenience wrapper around :class:`CongestedClique`."""
    return CongestedClique(n, capacity=capacity, **kwargs).run(program_factory)
