"""Exception hierarchy for the congested-clique reproduction.

Every failure mode in the simulator and the algorithms raises a subclass of
:class:`ReproError`, so callers can distinguish model violations (a bug in an
algorithm) from malformed problem instances (a bug in the caller's input).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ModelViolation(ReproError):
    """An algorithm violated the congested-clique model.

    Examples: sending two messages over one directed edge in a single round,
    exceeding the per-message word capacity, or addressing a non-existent
    node.  These always indicate a bug in protocol code, never bad input.
    """


class CapacityExceeded(ModelViolation):
    """A packet carried more words than the per-edge capacity allows."""


class EdgeConflict(ModelViolation):
    """More than one packet was scheduled on a directed edge in one round."""


class WordSizeViolation(ModelViolation):
    """A packet word fell outside the O(log n)-bit polynomial bound."""


class InvalidInstance(ReproError):
    """A problem instance does not satisfy the problem's preconditions.

    For the Information Distribution Task (Problem 3.1) this means a node is
    source or destination of more than ``n`` messages; for sorting (Problem
    4.1) it means a node holds the wrong number of keys.
    """


class ProtocolError(ReproError):
    """A protocol reached an internal state that should be impossible.

    Raised when an invariant the paper proves (e.g. "each node now holds
    exactly sqrt(n) messages per destination set") fails at runtime; this is
    the simulator acting as a proof checker.
    """


class ColoringError(ReproError):
    """Edge-coloring machinery was given an input it cannot color.

    For example, asking for an exact Koenig coloring of a non-regular
    bipartite multigraph without padding, or a proper-coloring verification
    failure.
    """


class VerificationError(ReproError):
    """An algorithm's final output failed post-hoc verification."""
