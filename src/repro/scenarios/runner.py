"""ScenarioRunner: execute any algorithm on any engine and cross-check.

The runner is the differential harness the scenario taxonomy feeds:

* every run is **verified** against the problem's oracle
  (:func:`~repro.routing.problem.verify_delivery`,
  :func:`~repro.sorting.problem.verify_sorted_batches`, or the multiplex
  workload's closed-form expectation);
* round counts are checked against the paper's **bounds**
  (:mod:`repro.analysis.bounds`) — an inequality for the constant-round
  algorithms, an exact prediction for the naive baseline;
* traffic is checked against the structural **message budget** (at most
  ``n^2`` packets per round, every packet within the edge capacity seen);
* a **digest** of the canonical outputs lets
  :meth:`ScenarioRunner.differential` assert byte-identical results across
  algorithms and engines.

Example::

    from repro.scenarios import Scenario, ScenarioRunner

    runner = ScenarioRunner(engines=("reference", "fast"))
    report = runner.differential(Scenario("routing", "skewed", n=25, seed=3))
    assert report.ok, report.failures
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.bounds import (
    ROUTING_OPTIMIZED_ROUNDS,
    ROUTING_ROUNDS,
    SORTING_ROUNDS,
)
from ..core.engine import EngineSpec, RunResult, available_engines
from ..core.errors import ReproError
from ..core.network import run_protocol
from ..core.topology import is_perfect_square
from ..routing import (
    naive_round_bound,
    route_lenzen,
    route_naive,
    route_optimized,
    route_valiant,
    verify_delivery,
)
from ..sorting import sample_sort, sort_lenzen, verify_sorted_batches
from .generators import Scenario


@dataclass(frozen=True)
class AlgorithmSpec:
    """How to run and judge one algorithm inside the harness."""

    kind: str
    name: str
    run: Callable[[Any, EngineSpec, int], RunResult]
    #: closed-form round budget; ``(bound, exact)`` — ``exact=True`` means
    #: the measured round count must *equal* the bound, else ``<=``.
    budget: Optional[Callable[[Any], Tuple[int, bool]]] = None
    square_only: bool = False


ALGORITHMS: Dict[Tuple[str, str], AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec) -> None:
    ALGORITHMS[(spec.kind, spec.name)] = spec


def algorithms(kind: str) -> List[str]:
    return sorted(name for k, name in ALGORITHMS if k == kind)


def default_algorithm(kind: str) -> str:
    """The algorithm a scenario of ``kind`` runs when none is named.

    Single source of truth — the runner, the batch service, and the
    direct-execution oracles in tests/benches all resolve through here.
    """
    return kind if kind == "multiplex" else "lenzen"


register_algorithm(AlgorithmSpec(
    kind="routing",
    name="lenzen",
    run=lambda inst, engine, seed: route_lenzen(inst, engine=engine),
    budget=lambda inst: (ROUTING_ROUNDS, False),
))
register_algorithm(AlgorithmSpec(
    kind="routing",
    name="optimized",
    run=lambda inst, engine, seed: route_optimized(inst, engine=engine),
    budget=lambda inst: (ROUTING_OPTIMIZED_ROUNDS, False),
    square_only=True,
))
register_algorithm(AlgorithmSpec(
    kind="routing",
    name="naive",
    run=lambda inst, engine, seed: route_naive(inst, engine=engine),
    budget=lambda inst: (naive_round_bound(inst), True),
))
register_algorithm(AlgorithmSpec(
    kind="routing",
    name="randomized",
    run=lambda inst, engine, seed: route_valiant(inst, seed=seed, engine=engine),
))
register_algorithm(AlgorithmSpec(
    kind="sorting",
    name="lenzen",
    run=lambda inst, engine, seed: sort_lenzen(inst, engine=engine),
    budget=lambda inst: (SORTING_ROUNDS, False),
    square_only=True,
))
register_algorithm(AlgorithmSpec(
    kind="sorting",
    name="samplesort",
    run=lambda inst, engine, seed: sample_sort(inst, seed=seed, engine=engine),
    square_only=True,
))
register_algorithm(AlgorithmSpec(
    kind="multiplex",
    name="multiplex",
    run=lambda wl, engine, seed: run_protocol(
        wl.n, wl.make_program(), capacity=wl.capacity, engine=engine
    ),
    budget=lambda wl: (wl.expected_rounds, True),
))


@dataclass
class ScenarioOutcome:
    """One (scenario, algorithm, engine) execution, judged."""

    scenario: str
    kind: str
    algorithm: str
    engine: str
    ok: bool
    rounds: int = 0
    total_packets: int = 0
    total_words: int = 0
    max_edge_words: int = 0
    digest: str = ""
    budget: Optional[int] = None
    error: str = ""
    #: wall-clock seconds spent inside the algorithm run.
    wall_s: float = 0.0
    shared_cache_hits: int = 0
    shared_cache_misses: int = 0

    def row(self) -> List[Any]:
        return [
            self.scenario,
            self.algorithm,
            self.engine,
            self.rounds,
            self.budget if self.budget is not None else "-",
            self.total_packets,
            "ok" if self.ok else f"FAIL: {self.error[:60]}",
        ]


@dataclass
class DifferentialReport:
    """Cross-checked outcomes of one scenario over algorithms x engines."""

    scenario: str
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and all(o.ok for o in self.outcomes)


def _canonical_outputs(kind: str, outputs: Sequence[Any]) -> Any:
    if kind == "routing":
        return tuple(
            tuple((m.source, m.dest, m.seq, m.payload) for m in sorted(node))
            for node in outputs
        )
    if kind == "sorting":
        return tuple(tuple(node) for node in outputs)
    return repr(outputs)


def output_digest(kind: str, outputs: Sequence[Any]) -> str:
    """Stable digest of the canonical per-node outputs."""
    blob = repr(_canonical_outputs(kind, outputs)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class ScenarioRunner:
    """Execute scenarios on any algorithm and engine; cross-check results.

    Args:
        engines: engine selectors every differential run compares
            (names registered with :func:`repro.core.engine.register_engine`
            or engine instances).
    """

    def __init__(self, engines: Sequence[EngineSpec] = ("reference", "fast")):
        if not engines:
            raise ValueError(
                f"need at least one engine; available: {available_engines()}"
            )
        self.engines = tuple(engines)

    # -- single runs --------------------------------------------------------

    def applicable_algorithms(self, scenario: Scenario) -> List[str]:
        """Algorithm names that can run this scenario."""
        out = []
        for name in algorithms(scenario.kind):
            spec = ALGORITHMS[(scenario.kind, name)]
            if spec.square_only and not is_perfect_square(scenario.n):
                continue
            out.append(name)
        return out

    def run(
        self,
        scenario: Scenario,
        algorithm: Optional[str] = None,
        engine: EngineSpec = "reference",
        workload: Any = None,
    ) -> ScenarioOutcome:
        """Run one (scenario, algorithm, engine) combination and judge it.

        ``workload`` lets a caller reuse one built instance across runs
        (essential for seeded differential comparisons).
        """
        if algorithm is None:
            algorithm = default_algorithm(scenario.kind)
        spec = ALGORITHMS.get((scenario.kind, algorithm))
        if spec is None:
            raise ValueError(
                f"no {scenario.kind} algorithm {algorithm!r}; known: "
                f"{algorithms(scenario.kind)}"
            )
        engine_name = engine if isinstance(engine, str) else getattr(
            engine, "name", repr(engine)
        )
        outcome = ScenarioOutcome(
            scenario=scenario.name,
            kind=scenario.kind,
            algorithm=algorithm,
            engine=engine_name,
            ok=False,
        )
        if workload is None:
            workload = scenario.build()
        t0 = time.perf_counter()
        try:
            result = spec.run(workload, engine, scenario.seed)
            outcome.wall_s = time.perf_counter() - t0
            outcome.shared_cache_hits = result.shared_cache_hits
            outcome.shared_cache_misses = result.shared_cache_misses
            outcome.rounds = result.rounds
            outcome.total_packets = result.stats.total_packets
            outcome.total_words = result.stats.total_words
            outcome.max_edge_words = max(
                (r.max_words_on_edge for r in result.stats.per_round),
                default=0,
            )
            self._verify(scenario.kind, workload, result)
            self._check_budgets(spec, workload, result, outcome)
            outcome.digest = output_digest(scenario.kind, result.outputs)
            outcome.ok = not outcome.error
        except ReproError as exc:
            outcome.wall_s = time.perf_counter() - t0
            outcome.error = f"{type(exc).__name__}: {exc}"
        return outcome

    @staticmethod
    def _verify(kind: str, workload: Any, result: RunResult) -> None:
        if kind == "routing":
            verify_delivery(workload, result.outputs)
        elif kind == "sorting":
            verify_sorted_batches(workload, result.outputs)
        elif kind == "multiplex":
            workload.verify(result.outputs)

    @staticmethod
    def _check_budgets(
        spec: AlgorithmSpec,
        workload: Any,
        result: RunResult,
        outcome: ScenarioOutcome,
    ) -> None:
        n = getattr(workload, "n", result.stats.n)
        if result.stats.total_packets > result.rounds * n * n:
            outcome.error = (
                f"message budget: {result.stats.total_packets} packets in "
                f"{result.rounds} rounds exceeds n^2 per round"
            )
            return
        if spec.budget is None:
            return
        bound, exact = spec.budget(workload)
        outcome.budget = bound
        if exact and result.rounds != bound:
            outcome.error = (
                f"round count {result.rounds} != predicted {bound}"
            )
        elif not exact and result.rounds > bound:
            outcome.error = (
                f"round count {result.rounds} exceeds bound {bound}"
            )

    # -- differential sweeps ------------------------------------------------

    def differential(
        self,
        scenario: Scenario,
        algorithms_to_run: Optional[Sequence[str]] = None,
        engines: Optional[Sequence[EngineSpec]] = None,
    ) -> DifferentialReport:
        """Run every algorithm on every engine; cross-check the results.

        Checks, beyond each run's own verification and budgets:

        * all combinations produce the identical canonical output digest
          (delivered multisets for routing, exact batches for sorting);
        * for each algorithm, every engine reports the same round count and
          traffic totals.
        """
        report = DifferentialReport(scenario=scenario.name)
        names = (
            list(algorithms_to_run)
            if algorithms_to_run is not None
            else self.applicable_algorithms(scenario)
        )
        engines = tuple(engines) if engines is not None else self.engines
        workload = scenario.build()
        by_algorithm: Dict[str, List[ScenarioOutcome]] = {}
        for name in names:
            for engine in engines:
                outcome = self.run(scenario, name, engine, workload=workload)
                report.outcomes.append(outcome)
                by_algorithm.setdefault(name, []).append(outcome)
                if not outcome.ok:
                    report.failures.append(
                        f"{scenario.name} {name}/{outcome.engine}: "
                        f"{outcome.error}"
                    )
        good = [o for o in report.outcomes if o.ok]
        digests = {o.digest for o in good}
        if len(digests) > 1:
            report.failures.append(
                f"{scenario.name}: outputs diverge across "
                f"{sorted((o.algorithm, o.engine) for o in good)}"
            )
        for name, outs in by_algorithm.items():
            outs = [o for o in outs if o.ok]
            if len({(o.rounds, o.total_packets, o.total_words) for o in outs}) > 1:
                report.failures.append(
                    f"{scenario.name} {name}: engines disagree on "
                    f"rounds/traffic"
                )
        return report

    def sweep(
        self,
        scenarios: Iterable[Scenario],
        algorithms_to_run: Optional[Sequence[str]] = None,
        engines: Optional[Sequence[EngineSpec]] = None,
    ) -> List[DifferentialReport]:
        """Differential runs over many scenarios."""
        return [
            self.differential(sc, algorithms_to_run, engines)
            for sc in scenarios
        ]
