"""Scenario sweeps: diverse workloads x algorithms x execution engines.

This subsystem turns the reproduction into a differential testing harness:

* :mod:`repro.scenarios.generators` — the scenario taxonomy
  (balanced / skewed / adversarial / transpose / bursty routing, uniform /
  duplicate-heavy / presorted / reversed sorting, bursty multiplex traffic);
* :mod:`repro.scenarios.runner` — the :class:`ScenarioRunner`, which
  executes any algorithm on any engine, verifies outputs against oracles,
  checks round counts against the paper's bounds, and cross-checks that all
  algorithm/engine combinations agree byte-for-byte.

Smoke-run the default matrix from the command line::

    python -m repro.scenarios --quick
"""

from .generators import (
    DEFAULT_MIX,
    KINDS,
    REMOTE_SELFCHECK_MIX,
    BurstyMultiplexWorkload,
    Scenario,
    arrival_times,
    bursty_arrivals,
    default_scenarios,
    families,
    mixed_batch,
    parse_mix,
    poisson_arrivals,
    remote_selfcheck_batch,
    saturated_arrivals,
    scenario_matrix,
    uniform_arrivals,
)
from .runner import (
    ALGORITHMS,
    AlgorithmSpec,
    DifferentialReport,
    ScenarioOutcome,
    ScenarioRunner,
    algorithms,
    default_algorithm,
    output_digest,
    register_algorithm,
)

__all__ = [
    "DEFAULT_MIX",
    "KINDS",
    "REMOTE_SELFCHECK_MIX",
    "remote_selfcheck_batch",
    "Scenario",
    "BurstyMultiplexWorkload",
    "default_scenarios",
    "families",
    "mixed_batch",
    "parse_mix",
    "scenario_matrix",
    "arrival_times",
    "bursty_arrivals",
    "poisson_arrivals",
    "saturated_arrivals",
    "uniform_arrivals",
    "ScenarioRunner",
    "ScenarioOutcome",
    "DifferentialReport",
    "AlgorithmSpec",
    "ALGORITHMS",
    "algorithms",
    "default_algorithm",
    "register_algorithm",
    "output_digest",
]
