"""Scenario taxonomy: named workload families over sizes and seeds.

A :class:`Scenario` is a reproducible (kind, family, n, seed) coordinate;
``build()`` materializes the concrete workload object.  Families:

========== ============ ====================================================
kind       family       workload
========== ============ ====================================================
routing    balanced     :func:`~repro.routing.problem.uniform_instance` —
                        random doubly-balanced assignment
routing    skewed       :func:`~repro.routing.problem.block_skew_instance` —
                        traffic concentrated between group pairs
routing    adversarial  :func:`~repro.routing.problem.permutation_instance`
                        — the hotspot-per-node worst case for direct routing
routing    transpose    :func:`~repro.routing.problem.transpose_instance` —
                        all-to-all, perfectly balanced per edge
routing    bursty       :func:`~repro.routing.problem.bursty_instance` —
                        relaxed instance, bursts from few hot sources
sorting    uniform      random keys, duplicates possible
sorting    duplicates   only a handful of distinct values (tie-breaking)
sorting    presorted    input already in globally sorted placement
sorting    reversed     anti-sorted placement
multiplex  bursty       :class:`BurstyMultiplexWorkload` — two channels with
                        uneven per-node bursts multiplexed on one clique
========== ============ ====================================================

The matrix helpers (:func:`scenario_matrix`, :func:`default_scenarios`)
enumerate scenarios for sweeps; the :mod:`repro.scenarios.runner` executes
them on any algorithm and any engine and cross-checks the results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Sequence, Tuple

from ..core.context import NodeContext
from ..core.errors import VerificationError
from ..core.message import Packet
from ..core.topology import is_perfect_square
from ..routing.multiplex import Channel, multiplex
from ..routing.problem import (
    block_skew_instance,
    bursty_instance,
    permutation_instance,
    transpose_instance,
    uniform_instance,
)
from ..sorting.problem import (
    duplicate_heavy_instance,
    presorted_instance,
    reversed_instance,
    uniform_sort_instance,
)

KINDS = ("routing", "sorting", "multiplex")


@dataclass(frozen=True)
class Scenario:
    """One reproducible workload coordinate."""

    kind: str
    family: str
    n: int
    seed: int = 0

    def __post_init__(self) -> None:
        if (self.kind, self.family) not in _BUILDERS:
            known = ", ".join(f"{k}/{f}" for k, f in sorted(_BUILDERS))
            raise ValueError(
                f"unknown scenario family {self.kind}/{self.family}; "
                f"known: {known}"
            )

    @property
    def name(self) -> str:
        return f"{self.kind}/{self.family}[n={self.n},seed={self.seed}]"

    def build(self) -> Any:
        """Materialize the workload (a problem instance or workload object)."""
        return _BUILDERS[(self.kind, self.family)](self.n, self.seed)


class BurstyMultiplexWorkload:
    """Two concurrently multiplexed channels carrying uneven bursts.

    Channel ``A`` spans all ``n`` nodes; channel ``B`` spans the even nodes.
    In each channel, member ``j`` sends ``bursts[j]`` packets — one per
    round, each a :data:`width`-word payload — to its successor in the
    channel ring, then idles until the channel's longest burst drains.  The
    two channels share physical edges through the frame multiplexer, so this
    exercises exactly the machinery Theorem 3.7's overlay relies on, under
    deliberately skewed ("bursty") load.

    ``expected_outputs()`` is computable in closed form, which makes the
    workload a differential oracle for engines.
    """

    #: payload words per burst packet.
    width = 3

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 4:
            raise ValueError("bursty multiplex needs n >= 4")
        rng = random.Random(seed)
        self.n = n
        self.seed = seed
        max_burst = max(2, n // 2)
        self.bursts_a = [rng.randrange(0, max_burst + 1) for _ in range(n)]
        self.members_b = tuple(range(0, n, 2))
        self.bursts_b = [
            rng.randrange(0, max_burst + 1) for _ in self.members_b
        ]
        # one channel packet per edge per round: width words + [ch, len]
        # framing, two channels max on one physical edge.
        self.capacity = 2 * (self.width + 2)

    def _word(self, channel: int, sender: int, rnd: int, slot: int) -> int:
        return ((channel * self.n + sender) * self.n + rnd % self.n) * self.width + slot

    def _channel_factory(
        self, channel_index: int, bursts: Sequence[int]
    ) -> Callable[[Any], Generator]:
        width = self.width
        word = self._word
        rounds_total = max(bursts) if bursts else 0

        def factory(sub: Any) -> Generator:
            def gen() -> Generator:
                m = sub.n
                me = sub.node_id
                target = (me + 1) % m
                got: List[int] = []
                for r in range(rounds_total):
                    outbox: Dict[int, Packet] = {}
                    if r < bursts[me]:
                        outbox[target] = Packet(
                            tuple(word(channel_index, me, r, s) for s in range(width))
                        )
                    inbox = yield outbox
                    for pkt in inbox.values():
                        got.extend(pkt.words)
                return sorted(got)

            return gen()

        return factory

    def make_program(self) -> Callable[[NodeContext], Generator]:
        channels = [
            Channel(
                "A", None, self._channel_factory(0, self.bursts_a), self.width
            ),
            Channel(
                "B",
                self.members_b,
                self._channel_factory(1, self.bursts_b),
                self.width,
            ),
        ]

        def program(ctx: NodeContext) -> Generator:
            outs = yield from multiplex(ctx, channels)
            return outs

        return program

    def expected_outputs(self) -> List[List[Optional[List[int]]]]:
        """Closed form for what every node must return, per channel."""
        n = self.n
        width = self.width
        expected: List[List[Optional[List[int]]]] = [
            [None, None] for _ in range(n)
        ]
        for j in range(n):
            pred = (j - 1) % n
            expected[j][0] = sorted(
                self._word(0, pred, r, s)
                for r in range(self.bursts_a[pred])
                for s in range(width)
            )
        m = len(self.members_b)
        for local_j, gid in enumerate(self.members_b):
            local_pred = (local_j - 1) % m
            expected[gid][1] = sorted(
                self._word(1, local_pred, r, s)
                for r in range(self.bursts_b[local_pred])
                for s in range(width)
            )
        return expected

    def verify(self, outputs: Sequence[Any]) -> None:
        expected = self.expected_outputs()
        for i, (got, want) in enumerate(zip(outputs, expected)):
            if list(got) != want:
                raise VerificationError(
                    f"multiplex node {i}: channel outputs {got!r} != "
                    f"expected {want!r}"
                )

    #: number of rounds the multiplexed run must take: channels advance in
    #: lockstep, so the longer channel sets the pace (plus nothing else —
    #: the multiplexer spends no extra rounds on framing).
    @property
    def expected_rounds(self) -> int:
        return max(
            max(self.bursts_a) if self.bursts_a else 0,
            max(self.bursts_b) if self.bursts_b else 0,
        )


_BUILDERS: Dict[Tuple[str, str], Callable[[int, int], Any]] = {
    ("routing", "balanced"): lambda n, seed: uniform_instance(n, seed=seed),
    ("routing", "skewed"): lambda n, seed: block_skew_instance(n, seed=seed),
    ("routing", "adversarial"): lambda n, seed: permutation_instance(
        n, shift=1 + seed % max(1, n - 1)
    ),
    ("routing", "transpose"): lambda n, seed: transpose_instance(n),
    ("routing", "bursty"): lambda n, seed: bursty_instance(n, seed=seed),
    ("sorting", "uniform"): lambda n, seed: uniform_sort_instance(n, seed=seed),
    ("sorting", "duplicates"): lambda n, seed: duplicate_heavy_instance(
        n, seed=seed
    ),
    ("sorting", "presorted"): lambda n, seed: presorted_instance(n),
    ("sorting", "reversed"): lambda n, seed: reversed_instance(n),
    ("multiplex", "bursty"): lambda n, seed: BurstyMultiplexWorkload(n, seed),
}


def families(kind: str) -> List[str]:
    """Family names available for one scenario kind."""
    return sorted(f for k, f in _BUILDERS if k == kind)


def scenario_matrix(
    kind: str,
    sizes: Iterable[int],
    seeds: Iterable[int] = (0,),
    only_families: Optional[Iterable[str]] = None,
) -> List[Scenario]:
    """Cross product of families x sizes x seeds for one kind."""
    wanted = set(only_families) if only_families is not None else None
    out = []
    for family in families(kind):
        if wanted is not None and family not in wanted:
            continue
        for n in sizes:
            for seed in seeds:
                out.append(Scenario(kind, family, n, seed))
    return out


#: Default composition of a batched-service workload: a weighted blend of
#: the routing families the paper optimizes for, the two interesting sort
#: families, and multiplexed traffic.  Weights are relative frequencies.
DEFAULT_MIX = (
    "routing/balanced:3,routing/skewed:2,routing/adversarial:1,"
    "sorting/uniform:2,sorting/duplicates:1,multiplex/bursty:1"
)


#: Composition of the network service's loopback selfcheck
#: (``python -m repro.service.net selfcheck`` and CI's ``net-smoke``):
#: every family in the taxonomy appears — the point of the differential
#: is coverage of the wire path, not realism of the traffic blend — with
#: extra weight on the routing families whose instances stress the
#: columnar envelopes hardest.
REMOTE_SELFCHECK_MIX = (
    "routing/balanced:2,routing/skewed:2,routing/adversarial:1,"
    "routing/transpose:1,routing/bursty:1,sorting/uniform:2,"
    "sorting/duplicates:1,sorting/presorted:1,sorting/reversed:1,"
    "multiplex/bursty:2"
)


def remote_selfcheck_batch(batch: int, seed0: int = 0) -> List["Scenario"]:
    """The deterministic batch the remote selfcheck differentials run on.

    A :func:`mixed_batch` over :data:`REMOTE_SELFCHECK_MIX` with small
    sizes (16/25-node instances, perfect squares for the sorters), so a
    256-instance batch stays cheap enough to execute four ways — remote
    client, mock client, in-process gateway, sequential baseline — in a
    CI smoke job while still touching every family's encode/decode path.
    """
    return mixed_batch(
        batch,
        mix=REMOTE_SELFCHECK_MIX,
        routing_sizes=(16, 25),
        sorting_sizes=(16, 25),
        multiplex_sizes=(16, 20),
        seed0=seed0,
    )


def parse_mix(spec: str) -> List[Tuple[str, str, int]]:
    """Parse a ``kind/family:weight`` mix spec into ``(kind, family, w)``.

    Entries are comma-separated; ``:weight`` is optional (default 1) and
    must be a positive integer.  Families are validated against the
    taxonomy.  Example: ``"routing/balanced:3,sorting/uniform"``.
    """
    out: List[Tuple[str, str, int]] = []
    for raw_entry in spec.split(","):
        entry = raw_entry.strip()
        if not entry:
            continue
        coord, _, weight_s = entry.partition(":")
        kind, sep, family = coord.partition("/")
        kind, family = kind.strip(), family.strip()
        if not sep or (kind, family) not in _BUILDERS:
            known = ", ".join(f"{k}/{f}" for k, f in sorted(_BUILDERS))
            raise ValueError(
                f"bad mix entry {entry!r}: want kind/family[:weight] with "
                f"a known family ({known})"
            )
        try:
            weight = int(weight_s) if weight_s else 1
        except ValueError:
            weight = 0
        if weight < 1:
            raise ValueError(
                f"bad mix entry {entry!r}: weight must be a positive integer"
            )
        out.append((kind, family, weight))
    if not out:
        raise ValueError(f"empty scenario mix {spec!r}")
    return out


def mixed_batch(
    batch: int,
    mix: str = DEFAULT_MIX,
    routing_sizes: Sequence[int] = (16, 25),
    sorting_sizes: Sequence[int] = (16, 25),
    multiplex_sizes: Sequence[int] = (16, 20),
    seed0: int = 0,
) -> List[Scenario]:
    """A deterministic batch of ``batch`` scenarios following a mix spec.

    This is the workload feed of the batch-execution service
    (:mod:`repro.service`): families are interleaved in weighted round-robin
    order (heterogeneity *within* a shard, not one family per shard), sizes
    cycle per family, and every scenario gets a distinct seed derived from
    ``seed0`` — so the batch is reproducible from ``(batch, mix, seed0)``
    alone, which is what lets differential backends compare digests.

    Sorting families are pinned to perfect-square sizes (Algorithm 4's
    requirement).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    bad = [s for s in sorting_sizes if not is_perfect_square(s)]
    if bad:
        raise ValueError(f"sorting sizes must be perfect squares; got {bad}")
    sizes = {
        "routing": tuple(routing_sizes),
        "sorting": tuple(sorting_sizes),
        "multiplex": tuple(multiplex_sizes),
    }
    for kind, options in sizes.items():
        if not options:
            raise ValueError(f"no sizes configured for kind {kind!r}")
    cycle: List[Tuple[str, str]] = []
    for kind, family, weight in parse_mix(mix):
        cycle.extend([(kind, family)] * weight)
    per_family_count: Dict[Tuple[str, str], int] = {}
    out: List[Scenario] = []
    for i in range(batch):
        kind, family = cycle[i % len(cycle)]
        k = per_family_count.get((kind, family), 0)
        per_family_count[(kind, family)] = k + 1
        n = sizes[kind][k % len(sizes[kind])]
        out.append(Scenario(kind, family, n, seed=seed0 + i))
    return out


# -- arrival processes -------------------------------------------------------
#
# The streaming gateway (:mod:`repro.service.stream`) is driven open-loop:
# requests arrive on a clock that does not wait for completions, which is
# what makes backpressure and tail latency observable at all.  These
# helpers produce the arrival timeline (seconds from stream start, sorted
# ascending, one entry per request).


def poisson_arrivals(rate: float, count: int, seed: int = 0) -> List[float]:
    """``count`` Poisson-process arrival times at ``rate`` per second.

    Interarrival gaps are i.i.d. exponential with mean ``1/rate`` —
    the classic open-loop load model (memoryless, bursty at every
    timescale).  Deterministic in ``(rate, count, seed)``.
    """
    if rate <= 0:
        raise ValueError(f"poisson arrivals need rate > 0, got {rate}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(count):
        t += rng.expovariate(rate)
        out.append(t)
    return out


def uniform_arrivals(rate: float, count: int) -> List[float]:
    """``count`` evenly spaced arrivals at ``rate`` per second.

    The deterministic comparison baseline for the Poisson process: same
    offered load, zero burstiness.
    """
    if rate <= 0:
        raise ValueError(f"uniform arrivals need rate > 0, got {rate}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    gap = 1.0 / rate
    return [gap * (i + 1) for i in range(count)]


def saturated_arrivals(count: int) -> List[float]:
    """Every request arrives at t=0 — the closed-loop/throughput regime.

    Under this timeline the gateway is permanently backlogged, so sustained
    throughput is bounded by the worker pool, not the arrival clock; it is
    what :mod:`benchmarks.bench_stream` measures against the sequential
    backend.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [0.0] * count


def bursty_arrivals(
    rate: float,
    count: int,
    burst: int = 8,
    idle_s: float = 1.0,
    seed: int = 0,
) -> List[float]:
    """``count`` arrivals in bursts of ``burst`` separated by idle gaps.

    Within a burst, requests arrive back to back at ``rate`` per second;
    between bursts the stream goes quiet for ``idle_s`` seconds (jittered
    ±25% so gaps are not phase-locked with any poller).  This is the
    autoscaler's native workload: queue depth spikes during a burst
    (scale-up trigger) and drains to zero in the gap (scale-down
    trigger).  Deterministic in ``(rate, count, burst, idle_s, seed)``.
    """
    if rate <= 0:
        raise ValueError(f"bursty arrivals need rate > 0, got {rate}")
    if burst <= 0:
        raise ValueError(f"burst size must be > 0, got {burst}")
    if idle_s < 0:
        raise ValueError(f"idle gap must be >= 0, got {idle_s}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    gap = 1.0 / rate
    t = 0.0
    out: List[float] = []
    for i in range(count):
        if i and i % burst == 0:
            t += idle_s * (0.75 + 0.5 * rng.random())
        else:
            t += gap
        out.append(t)
    return out


def recorded_arrivals(
    offsets: List[float], timescale: float = 1.0
) -> List[float]:
    """Normalize captured arrival offsets into a replayable timeline.

    A traffic capture (:mod:`repro.service.recording`) stamps each
    request with its offset from the first recorded event; this turns
    those raw offsets into a monotone, zero-based arrival list a replay
    can feed straight into the gateway.  ``timescale`` stretches or
    compresses the timeline (``0`` collapses it into a saturated
    replay); negative gaps — a capture merged from interleaved writers —
    clamp to zero rather than reordering requests, preserving the
    recorded submission order.
    """
    if timescale < 0:
        raise ValueError(f"timescale must be >= 0, got {timescale}")
    if not offsets:
        return []
    base = offsets[0]
    out = []
    prev = 0.0
    for off in offsets:
        t = (off - base) * timescale
        if t < prev:
            t = prev
        out.append(t)
        prev = t
    return out


def arrival_times(
    process: str, rate: float, count: int, seed: int = 0
) -> List[float]:
    """Dispatch on an arrival-process name: poisson, uniform, saturated
    or bursty."""
    if process == "poisson":
        return poisson_arrivals(rate, count, seed)
    if process == "uniform":
        return uniform_arrivals(rate, count)
    if process == "saturated":
        return saturated_arrivals(count)
    if process == "bursty":
        return bursty_arrivals(rate, count, seed=seed)
    raise ValueError(
        f"unknown arrival process {process!r}; "
        f"want poisson, uniform, saturated or bursty"
    )


def flap_times(
    period_s: float,
    duration_s: float,
    jitter_frac: float = 0.0,
    seed: int = 0,
) -> List[float]:
    """Connection-flap instants for a reconnect soak: one per
    ``period_s`` across ``duration_s`` seconds.

    ``jitter_frac`` spreads each flap uniformly within
    ``[-jitter_frac, +jitter_frac] * period_s`` of its slot, so flaps
    decorrelate from any periodic structure in the offered load.
    Deterministic in ``(period_s, duration_s, jitter_frac, seed)``;
    times are strictly increasing and strictly inside
    ``(0, duration_s)``.
    """
    if period_s <= 0:
        raise ValueError(f"flap period must be > 0, got {period_s}")
    if duration_s < 0:
        raise ValueError(f"duration must be >= 0, got {duration_s}")
    if not 0.0 <= jitter_frac <= 1.0:
        raise ValueError(
            f"jitter_frac must be in [0, 1], got {jitter_frac}"
        )
    rng = random.Random(seed)
    out: List[float] = []
    t = period_s
    while t < duration_s:
        jittered = t + (2.0 * rng.random() - 1.0) * jitter_frac * period_s
        jittered = min(max(jittered, 1e-9), duration_s - 1e-9)
        if not out or jittered > out[-1]:
            out.append(jittered)
        t += period_s
    return out


def default_scenarios(quick: bool = True) -> List[Scenario]:
    """The standard sweep: every family, square and non-square sizes.

    ``quick=True`` is the CI smoke matrix; ``quick=False`` widens sizes and
    seeds for a nightly-style sweep.  Sorting scenarios use perfect-square
    sizes only (Algorithm 4's requirement).
    """
    if quick:
        routing_sizes, sorting_sizes, seeds = [16, 20, 25], [16], (0,)
    else:
        routing_sizes, sorting_sizes, seeds = [16, 20, 25, 27, 36], [16, 25], (0, 1)
    scenarios = scenario_matrix("routing", routing_sizes, seeds)
    scenarios += scenario_matrix("sorting", sorting_sizes, seeds)
    scenarios += scenario_matrix(
        "multiplex", [s for s in routing_sizes if s >= 4], seeds
    )
    assert all(is_perfect_square(s) for s in sorting_sizes)
    return scenarios
