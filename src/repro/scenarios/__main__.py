"""Command-line scenario sweep: ``python -m repro.scenarios [options]``.

Runs the differential scenario matrix (every applicable algorithm on every
requested engine), prints one row per execution, and exits non-zero if any
verification, bound, or cross-check fails — CI uses ``--quick`` as the
engine-regression smoke test.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..analysis import render_table
from ..core.engine import available_engines
from .generators import KINDS, default_scenarios
from .runner import ScenarioRunner


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="differential scenario sweep over algorithms x engines",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI matrix (default is the wider sweep)",
    )
    parser.add_argument(
        "--engines",
        default="reference,fast",
        help=f"comma-separated engine names; available: "
        f"{','.join(available_engines())}",
    )
    parser.add_argument(
        "--kinds",
        default=",".join(KINDS),
        help="comma-separated scenario kinds to include",
    )
    args = parser.parse_args(argv)

    kinds = {k.strip() for k in args.kinds.split(",") if k.strip()}
    unknown_kinds = kinds - set(KINDS)
    if unknown_kinds:
        parser.error(
            f"unknown kind(s) {sorted(unknown_kinds)}; choose from {KINDS}"
        )
    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    known = set(available_engines())
    bad_engines = [e for e in engines if e not in known]
    if bad_engines:
        parser.error(
            f"unknown engine(s) {bad_engines}; available: "
            f"{', '.join(available_engines())}"
        )
    scenarios = [
        sc for sc in default_scenarios(quick=args.quick) if sc.kind in kinds
    ]
    if not scenarios:
        parser.error("scenario matrix is empty; nothing to run")
    runner = ScenarioRunner(engines=engines)
    reports = runner.sweep(scenarios)

    rows = [o.row() for rep in reports for o in rep.outcomes]
    print(
        render_table(
            "scenario sweep (differential: algorithms x engines)",
            ["scenario", "algorithm", "engine", "rounds", "bound", "packets",
             "status"],
            rows,
        )
    )
    failures = [f for rep in reports for f in rep.failures]
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(
        f"\n{len(reports)} scenarios x {len(engines)} engines ok "
        f"({len(rows)} runs)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
