"""repro — reproduction of Lenzen (PODC 2013), "Optimal Deterministic
Routing and Sorting on the Congested Clique".

Quickstart::

    from repro import route_lenzen, uniform_instance, verify_delivery
    inst = uniform_instance(25, seed=1)
    result = route_lenzen(inst)       # Theorem 3.7: at most 16 rounds
    verify_delivery(inst, result.outputs)

    from repro import sort_lenzen, uniform_sort_instance, verify_sorted_batches
    sinst = uniform_sort_instance(25, seed=1)
    sres = sort_lenzen(sinst)         # Theorem 4.5: 37 rounds
    verify_sorted_batches(sinst, sres.outputs)

Both headline algorithms (and every baseline) accept an ``engine=``
selector: ``"reference"`` is the fully-audited round loop, ``"fast"`` the
throughput loop for large sweeps (see :mod:`repro.core.engine`)::

    route_lenzen(inst, engine="fast")

Subpackages: :mod:`repro.core` (simulator + engines), :mod:`repro.graphtools`
(Koenig coloring), :mod:`repro.routing`, :mod:`repro.sorting`,
:mod:`repro.extensions` (Section 6), :mod:`repro.analysis`,
:mod:`repro.scenarios` (workload taxonomy + differential runner).
"""

__version__ = "1.1.0"

from . import analysis, core, extensions, graphtools, routing, sorting  # noqa: F401
from .core import (
    CongestedClique,
    FastEngine,
    Packet,
    ReferenceEngine,
    RunResult,
    available_engines,
    get_engine,
    run_protocol,
)
from .routing import (
    Message,
    RoutingInstance,
    block_skew_instance,
    bursty_instance,
    permutation_instance,
    route_lenzen,
    route_naive,
    route_optimized,
    route_valiant,
    transpose_instance,
    uniform_instance,
    verify_delivery,
)
from .sorting import (
    SortInstance,
    duplicate_heavy_instance,
    index_keys,
    median,
    mode,
    sample_sort,
    select_kth,
    sort_lenzen,
    uniform_sort_instance,
    verify_indices,
    verify_sorted_batches,
)
from . import scenarios  # noqa: F401  (after routing/sorting: it uses both)

__all__ = [
    "__version__",
    "CongestedClique",
    "Packet",
    "RunResult",
    "run_protocol",
    "ReferenceEngine",
    "FastEngine",
    "get_engine",
    "available_engines",
    "Message",
    "RoutingInstance",
    "uniform_instance",
    "permutation_instance",
    "transpose_instance",
    "block_skew_instance",
    "bursty_instance",
    "route_lenzen",
    "route_optimized",
    "route_naive",
    "route_valiant",
    "verify_delivery",
    "SortInstance",
    "uniform_sort_instance",
    "duplicate_heavy_instance",
    "sort_lenzen",
    "sample_sort",
    "index_keys",
    "select_kth",
    "median",
    "mode",
    "verify_sorted_batches",
    "verify_indices",
    "core",
    "graphtools",
    "routing",
    "sorting",
    "extensions",
    "analysis",
    "scenarios",
]
