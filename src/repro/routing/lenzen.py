"""Algorithms 1 and 2: deterministic routing in 16 rounds (square ``n``).

This is the paper's primary contribution (Theorem 3.7, perfect-square case).
The node set splits into ``sqrt(n)`` groups of ``sqrt(n)`` nodes; the
high-level strategy (Algorithm 1) is:

1. partition nodes into groups;
2. move messages so each group holds the right number of messages per
   destination group (Algorithm 2 — 7 rounds);
3. rebalance within each group so each node holds a balanced share per
   destination group (4 rounds);
4. ship messages to their destination groups (1 round);
5. deliver within each destination group via Corollary 3.4 (4 rounds).

Total: 16 rounds.  The implementation runs one generator per node; every
cross-node fact travels in messages, and the paper's invariants are asserted
at runtime (the simulator doubles as a proof checker).

Relaxed loads.  Problem 3.1's normal form has *exactly* ``n`` messages per
source and destination.  The remark after Problem 3.1 and the proof of
Theorem 3.7 also use the algorithm with up to ``load_bound`` messages per
node, where ``load_bound`` may exceed ``n`` by a constant factor (the
non-square overlay runs the square algorithm on ``m < n`` nodes with up to
``~2m`` messages per node, "increasing the message size by a factor of at
most 2").  This implementation supports any ``load_bound``; whenever a step
would exceed one message per edge it bundles ``lanes = ceil(load_bound/n)``
fixed-width message segments per packet, exactly the paper's constant-factor
message-size increase.

Wire format: a message is ``(header, payload)`` with ``header =
pack_triple(source, dest, seq, n)``; during Algorithm 2 Step 5 an extra word
carries the Step-2 color so the receiving node knows the message's
intermediate group without reconstructing other nodes' private orderings.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..core.context import NodeContext, planned
from ..core.engine import EngineSpec
from ..core.errors import ModelViolation, ProtocolError
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult
from ..core.topology import square_groups, square_partition
from ..core.wire import fast_packet, header_codec
from ..graphtools.coloring import koenig_coloring_padded
from ..graphtools.multigraph import from_demand_matrix
from .primitives import (
    announce_within_group,
    broadcast_word,
    route_known,
    route_unknown,
)
from .problem import Message, RoutingInstance

#: Paper round budget for the square case (Theorem 3.7).
ROUNDS_SQUARE = 16

WireMsg = Tuple[int, int]  # (header, payload)


def header_base(n: int, load_bound: int) -> int:
    """Packing base for (source, dest, seq) headers.

    ``seq`` may reach ``load_bound - 1`` when nodes carry more than ``n``
    messages (relaxed instances), so the base must cover both.
    """
    return max(n, load_bound)


def _wire(m: Message, base: int) -> WireMsg:
    return (header_codec(base).pack(m.source, m.dest, m.seq), m.payload)


def _unwire(w: Sequence[int], base: int) -> Message:
    source, dest, seq = header_codec(base).unpack(w[0])
    return Message(source=source, dest=dest, seq=seq, payload=w[1])


def _color_pairs(demand: Tuple[Tuple[int, ...], ...]):
    """Koenig-color the multigraph of a demand matrix; group colors by pair.

    Pure in ``demand`` and expensive (the Koenig recursion), so memoized in
    the process-wide plan cache; the result is shared by reference and must
    not be mutated.
    """
    return planned(("color_pairs", demand), lambda: _color_pairs_impl(demand))


def _color_pairs_impl(demand: Tuple[Tuple[int, ...], ...]):
    graph = from_demand_matrix([list(r) for r in demand])
    colors = koenig_coloring_padded(graph) if graph.num_edges else []
    by_pair: Dict[Tuple[int, int], List[int]] = {}
    for (a, b), c in zip(graph.edges, colors):
        by_pair.setdefault((a, b), []).append(c)
    return by_pair


def _send_bundled(
    assignments: Dict[int, List[Tuple[int, ...]]],
    width: int,
    capacity: int,
) -> Dict[int, Packet]:
    """Build one packet per destination from fixed-width message segments."""
    outbox: Dict[int, Packet] = {}
    for dest, segs in assignments.items():
        words: List[int] = []
        for seg in segs:
            if len(seg) != width:
                raise ProtocolError(
                    f"segment width {len(seg)} != declared {width}"
                )
            words.extend(seg)
        if len(words) > capacity:
            raise ModelViolation(
                f"bundled packet of {len(words)} words exceeds capacity "
                f"{capacity}"
            )
        outbox[dest] = fast_packet(tuple(words))
    return outbox


def _recv_bundled(inbox: Dict[int, Packet], width: int) -> List[Tuple[int, ...]]:
    """Parse fixed-width segments out of every received packet."""
    out: List[Tuple[int, ...]] = []
    for src in sorted(inbox):
        words = inbox[src].words
        if len(words) % width != 0:
            raise ProtocolError(
                f"packet of {len(words)} words not a multiple of {width}"
            )
        for i in range(0, len(words), width):
            out.append(tuple(words[i : i + width]))
    return out


def lenzen_square_program(
    instance: RoutingInstance,
    wire_messages: Optional[List[List[WireMsg]]] = None,
    load_bound: Optional[int] = None,
) -> Callable[[NodeContext], Generator]:
    """Program factory running Algorithms 1+2 on a perfect-square ``n``.

    Args:
        instance: the routing instance (used for ``n`` and, unless
            ``wire_messages`` is given, the initial message placement).
        wire_messages: pre-encoded per-node message lists; lets callers (the
            non-square overlay, the sorting layer) feed translated instances.
        load_bound: maximum number of messages any node sends or receives;
            defaults to ``n`` for exact instances, else the instance maximum.
    """
    n = instance.n
    if load_bound is None:
        demand = instance.demand_matrix()
        load_bound = max(
            [n]
            + [sum(row) for row in demand]
            + [sum(col) for col in zip(*demand)]
        )
    hbase = header_base(n, load_bound)
    if wire_messages is None:
        pack = header_codec(hbase).pack  # hoisted: one codec per instance
        wire_messages = [
            sorted(
                (pack(m.source, m.dest, m.seq), m.payload)
                for m in instance.messages_by_source[i]
            )
            for i in range(n)
        ]
    strict = instance.exact and load_bound == n
    return lenzen_wire_program(n, wire_messages, load_bound, strict)


def lenzen_wire_program(
    n: int,
    wire_messages: List[List[WireMsg]],
    load_bound: int,
    strict: bool = False,
) -> Callable[[NodeContext], Generator]:
    """Algorithms 1+2 over pre-encoded wire messages (square ``n`` only).

    This is the layer the Theorem 3.7 overlay and the sorting algorithms
    drive directly: headers are already packed with
    ``header_base(n, load_bound)`` and node ids are already in this
    instance's (possibly virtual) ``0..n-1`` space.
    """
    part = square_partition(n)
    s = part.group_size
    groups: Tuple[Tuple[int, ...], ...] = square_groups(n)
    hbase = header_base(n, load_bound)
    codec = header_codec(hbase)
    lanes = -(-load_bound // n)  # ceil: segments bundled per packet

    def program(ctx: NodeContext) -> Generator:
        me = ctx.node_id
        g = part.group_of(me)
        r = part.rank_in_group(me)
        held: List[WireMsg] = sorted(wire_messages[me])
        ctx.observe_live_words(2 * len(held))

        codec_dest = codec.dest_of

        def dest_of(w: Sequence[int]) -> int:
            return codec_dest(w[0])

        def dgroup(w: Sequence[int]) -> int:
            return codec_dest(w[0]) // s

        # ---------------- Algorithm 2 (Alg. 1 Step 2): 7 rounds -----------
        # Step 1a: tell rank-i member of my group my count for dest group i.
        ctx.enter_phase("alg2.step1")
        my_counts = [0] * s
        for w in held:
            my_counts[dgroup(w)] += 1
        ctx.charge(len(held) + s)
        outbox = {
            part.member(g, i): Packet((my_counts[i],)) for i in range(s)
        }
        inbox = yield outbox
        # Step 1b: sum what I received (total my group sends to group r) and
        # broadcast it to everyone.
        group_total_for_r = sum(pkt.words[0] for pkt in inbox.values())
        ctx.charge(s)
        totals_flat = yield from broadcast_word(ctx, group_total_for_r)
        # totals[src_group][dest_group], announced by rank dest_group of
        # src_group.
        totals = tuple(
            tuple(totals_flat[part.member(sg, dg)] for dg in range(s))
            for sg in range(s)
        )
        if strict and sum(sum(row) for row in totals) != n * n:
            raise ProtocolError("Alg2 Step 1: totals do not sum to n^2")

        # Step 2 (local): color the group-to-group demand multigraph; color c
        # sends a message to intermediate group (c mod s).
        ctx.enter_phase("alg2.step2")
        step2_colors = ctx.shared_compute(
            ("alg2s2", totals), lambda: _color_pairs(totals)
        )
        ctx.charge_sort(n)

        # Step 3: announce my per-dest-group counts within my group, so all
        # members can place each other's messages in the group's canonical
        # order (the paper's "deferred completion" of Step 2).
        ctx.enter_phase("alg2.step3")
        counts_mat = yield from announce_within_group(
            ctx, groups, g, r, my_counts, ("a2s3", totals)
        )

        def offsets_for(member_rank: int, j: int) -> int:
            return sum(counts_mat[a][j] for a in range(member_rank))

        my_color: Dict[WireMsg, int] = {}
        seq_per_group = [0] * s
        for w in held:  # held is sorted => canonical per-pair order
            j = dgroup(w)
            idx = offsets_for(r, j) + seq_per_group[j]
            seq_per_group[j] += 1
            my_color[w] = step2_colors[(g, j)][idx]
        ctx.charge(len(held) + s * s)

        # Step 4 (local): pattern for the intra-group shuffle that makes the
        # Step-2 exchange executable in one round.  Edge (member a ->
        # intermediate group j) per message; Koenig coloring; color i moves
        # the message to member (i mod s).
        ctx.enter_phase("alg2.step4")
        counts_key = tuple(map(tuple, counts_mat))
        # The Step-4/5 patterns are pure functions of (totals, counts, g):
        # the per-run shared cache keeps node agreement semantics, while the
        # process-wide plan cache replays the derivations across runs.
        step4_demand = ctx.shared_compute(
            ("a2s4d", totals, counts_key, g),
            lambda: planned(
                ("a2s4d", totals, counts_key, g),
                lambda: _step4_demand(s, counts_mat, step2_colors, g),
            ),
        )
        step4_colors = ctx.shared_compute(
            ("a2s4c", totals, counts_key, g),
            lambda: _color_pairs(step4_demand),
        )
        move_demand = ctx.shared_compute(
            ("a2s5d", totals, counts_key, g),
            lambda: planned(
                ("a2s5d", totals, counts_key, g),
                lambda: _mod_s_demand(step4_colors, s),
            ),
        )
        by_igroup: Dict[int, List[WireMsg]] = {}
        for w in held:
            by_igroup.setdefault(my_color[w] % s, []).append(w)
        items: List[Tuple[int, Tuple[int, ...]]] = []
        for j, msgs in sorted(by_igroup.items()):
            pal = step4_colors[(r, j)]
            if len(pal) != len(msgs):
                raise ProtocolError("Alg2 Step 4: demand/coloring mismatch")
            for w, color4 in zip(msgs, pal):
                target_rank = color4 % s
                # carry the Step-2 color so the new holder knows j.
                items.append((target_rank, (w[0], w[1], my_color[w])))
        ctx.charge(len(held))

        # Step 5: execute the intra-group shuffle (2 rounds, Cor. 3.3).
        ctx.enter_phase("alg2.step5")
        received = yield from route_known(
            ctx,
            groups,
            g,
            r,
            items,
            move_demand,
            ("a2s5", totals, g),
            item_width=3,
        )
        held3 = [tuple(it) for it in received]
        ctx.observe_live_words(3 * len(held3))

        # Invariant (paper, end of Step 4 argument): in the exact case each
        # node now holds exactly sqrt(n) messages per intermediate group.
        per_igroup: Dict[int, List[Tuple[int, ...]]] = {
            j: [] for j in range(s)
        }
        for it in held3:
            per_igroup[it[2] % s].append(it)
        for j, msgs in per_igroup.items():
            if strict and len(msgs) != s:
                raise ProtocolError(
                    f"Alg2 Step 5 invariant: node holds {len(msgs)} messages "
                    f"for intermediate group {j}, expected {s}"
                )
            if len(msgs) > lanes * s:
                raise ProtocolError(
                    f"Alg2 Step 5 bound: {len(msgs)} messages for group {j} "
                    f"exceeds lanes*sqrt(n) = {lanes * s}"
                )

        # Step 6: the inter-group exchange, one round.  My k-th message for
        # intermediate group j goes to member (k mod s) of group j; with
        # relaxed loads up to `lanes` two-word segments share a packet.
        ctx.enter_phase("alg2.step6")
        assignments: Dict[int, List[Tuple[int, ...]]] = {}
        for j in range(s):
            for k, it in enumerate(sorted(per_igroup[j])):
                dest_node = part.member(j, k % s)
                assignments.setdefault(dest_node, []).append(
                    (it[0], it[1])
                )
        if strict and len(assignments) != n:
            raise ProtocolError("Alg2 Step 6: expected to send n messages")
        inbox = yield _send_bundled(assignments, 2, ctx.capacity)
        held = sorted((it[0], it[1]) for it in _recv_bundled(inbox, 2))
        if strict and len(held) != n:
            raise ProtocolError(
                f"Alg2 Step 6: received {len(held)} messages, expected {n}"
            )

        # ------------- Algorithm 1 Step 3: 4 rounds ------------------------
        # Rebalance within the (intermediate) group so every member holds a
        # balanced share per destination group.
        ctx.enter_phase("alg1.step3")
        my_counts3 = [0] * s
        for w in held:
            my_counts3[dgroup(w)] += 1
        counts3 = yield from announce_within_group(
            ctx, groups, g, r, my_counts3, ("a1s3", totals, g)
        )
        if strict:
            for j in range(s):
                tot = sum(counts3[a][j] for a in range(s))
                if tot != n:
                    raise ProtocolError(
                        f"Alg1 Step 2 invariant: group holds {tot} messages "
                        f"for dest group {j}, expected {n}"
                    )
        counts3_t = tuple(tuple(row) for row in counts3)
        colors3 = ctx.shared_compute(
            ("a1s3c", counts3_t, g), lambda: _color_pairs(counts3_t)
        )
        demand3 = ctx.shared_compute(
            ("a1s3d", counts3_t, g),
            lambda: planned(
                ("a1s3d", counts3_t),
                lambda: _mod_s_demand(colors3, s),
            ),
        )
        by_dgroup: Dict[int, List[WireMsg]] = {}
        for w in held:
            by_dgroup.setdefault(dgroup(w), []).append(w)
        items3: List[Tuple[int, Tuple[int, ...]]] = []
        for j, msgs in sorted(by_dgroup.items()):
            pal = colors3[(r, j)]
            if len(pal) != len(msgs):
                raise ProtocolError("Alg1 Step 3: demand/coloring mismatch")
            for w, c in zip(sorted(msgs), pal):
                items3.append((c % s, w))
        received3 = yield from route_known(
            ctx,
            groups,
            g,
            r,
            items3,
            demand3,
            ("a1s3r", counts3_t, g),
            item_width=2,
        )
        held = [(it[0], it[1]) for it in received3]

        by_dgroup = {}
        for w in held:
            by_dgroup.setdefault(dgroup(w), []).append(w)
        for j in range(s):
            cnt = len(by_dgroup.get(j, []))
            if strict and cnt != s:
                raise ProtocolError(
                    f"Alg1 Step 3 invariant: node holds {cnt} messages for "
                    f"dest group {j}, expected {s}"
                )
            if cnt > lanes * s:
                raise ProtocolError(
                    f"Alg1 Step 3 bound: {cnt} > lanes*sqrt(n)"
                )

        # ------------- Algorithm 1 Step 4: 1 round -------------------------
        ctx.enter_phase("alg1.step4")
        assignments = {}
        for j in range(s):
            for k, w in enumerate(sorted(by_dgroup.get(j, []))):
                dest_node = part.member(j, k % s)
                assignments.setdefault(dest_node, []).append(w)
        inbox = yield _send_bundled(assignments, 2, ctx.capacity)
        held = sorted((it[0], it[1]) for it in _recv_bundled(inbox, 2))
        if any(dgroup(w) != g for w in held):
            raise ProtocolError(
                "Alg1 Step 4 invariant: every held message must be destined "
                "inside this node's group"
            )
        if strict and len(held) != n:
            raise ProtocolError(
                f"Alg1 Step 4: node holds {len(held)} messages, expected {n}"
            )

        # ------------- Algorithm 1 Step 5: 4 rounds (Cor. 3.4) -------------
        ctx.enter_phase("alg1.step5")
        items5 = [(dest_of(w) - g * s, w) for w in held]
        received5 = yield from route_unknown(
            ctx, groups, g, r, items5, ("a1s5", g), item_width=2
        )
        unpack = codec.unpack
        final = [
            Message(*unpack(it[0]), payload=it[1]) for it in received5
        ]
        if any(m.dest != me for m in final):
            raise ProtocolError(
                f"delivery invariant: node {me} received a foreign message"
            )
        if strict and len(final) != n:
            raise ProtocolError(
                f"delivery invariant: node {me} received {len(final)} "
                f"messages, expected {n}"
            )
        ctx.observe_live_words(2 * len(final))
        return sorted(final)

    return program


def _step4_demand(
    s: int,
    counts_mat: List[List[int]],
    step2_colors: Dict[Tuple[int, int], List[int]],
    g: int,
) -> Tuple[Tuple[int, ...], ...]:
    """Demand of the Step-4 graph: member rank -> intermediate group.

    ``demand[a][j]`` counts member ``a``'s messages whose Step-2 color is
    congruent to ``j`` mod ``s`` — derivable by every group member from the
    announced counts and the shared Step-2 coloring.
    """
    offsets = [[0] * s for _ in range(s)]
    for j in range(s):
        acc = 0
        for a in range(s):
            offsets[a][j] = acc
            acc += counts_mat[a][j]
    demand = [[0] * s for _ in range(s)]
    for a in range(s):
        for j2 in range(s):
            pal = step2_colors.get((g, j2), [])
            for idx in range(counts_mat[a][j2]):
                c = pal[offsets[a][j2] + idx]
                demand[a][c % s] += 1
    return tuple(tuple(row) for row in demand)


def _mod_s_demand(
    colors_by_pair: Dict[Tuple[int, int], List[int]], s: int
) -> Tuple[Tuple[int, ...], ...]:
    """Member-to-member demand induced by "color i moves to member i mod s"."""
    demand = [[0] * s for _ in range(s)]
    for (a, _j), pal in colors_by_pair.items():
        for c in pal:
            demand[a][c % s] += 1
    return tuple(tuple(row) for row in demand)


def route_lenzen_square(
    instance: RoutingInstance,
    capacity: int = 8,
    meter: bool = False,
    verify_shared: bool = False,
    engine: "EngineSpec" = None,
) -> RunResult:
    """Run the 16-round router on a perfect-square instance."""
    clique = CongestedClique(
        instance.n,
        capacity=capacity,
        meter=meter,
        verify_shared=verify_shared,
        engine=engine,
    )
    return clique.run(lenzen_square_program(instance))
