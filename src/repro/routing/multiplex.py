"""Channel multiplexing: run several protocols concurrently on one clique.

Theorem 3.7's non-square construction runs three activities *in the same
rounds*: the square algorithm inside window ``V1``, the square algorithm
inside window ``V2``, and a 6-round detour for fringe-to-fringe traffic.
Edges shared by two activities then carry both packets at once — the paper's
"message size increases by a factor of at most 2".

The multiplexer realizes this: each channel is a sub-protocol over a subset
of nodes with its own virtual id space; per round, the sub-packets bound for
one physical destination are concatenated with ``[channel, length]`` framing.
Total words stay a constant multiple of a single channel's capacity, i.e.
the model's O(log n) per edge with a larger constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..core.context import NodeContext
from ..core.errors import ProtocolError
from ..core.message import Packet


class SubContext:
    """A node's view of one channel: virtual id space and budgeted capacity.

    Shared-computation keys and phase names are prefixed with the channel
    name so concurrent channels never collide in the cache or the round
    audit.
    """

    def __init__(
        self,
        parent: NodeContext,
        channel: str,
        local_id: int,
        size: int,
        capacity: int,
    ) -> None:
        self.node_id = local_id
        self.n = size
        self.capacity = capacity
        self.meter = parent.meter
        self._parent = parent
        self._channel = channel

    def shared_compute(self, key, fn):
        return self._parent.shared_compute((self._channel, key), fn)

    def enter_phase(self, name: str) -> None:
        self._parent.enter_phase(f"{self._channel}:{name}")

    def charge(self, steps: int = 1) -> None:
        self._parent.charge(steps)

    def charge_sort(self, length: int) -> None:
        self._parent.charge_sort(length)

    def observe_live_words(self, words: int) -> None:
        self._parent.observe_live_words(words)


@dataclass
class Channel:
    """One concurrent sub-protocol.

    Attributes:
        name: channel label (also the cache/phase prefix).
        nodes: global node ids participating, in virtual-id order; ``None``
            means all ``n`` nodes with identity mapping.
        factory: builds the sub-protocol generator from a :class:`SubContext`
            — called only at participating nodes.
        capacity: word budget for this channel's packets.
    """

    name: str
    nodes: Optional[Tuple[int, ...]]
    factory: Callable[[SubContext], Generator]
    capacity: int = 8


def multiplex(
    ctx: NodeContext, channels: Sequence[Channel]
) -> Generator[Dict[int, Packet], Dict[int, Packet], List[Any]]:
    """Drive all channels in lockstep at this node; returns their outputs.

    Output list order matches ``channels``; entries are ``None`` for
    channels this node does not participate in.
    """
    n = ctx.n
    gens: List[Optional[Generator]] = []
    to_global: List[Optional[Tuple[int, ...]]] = []
    to_local: List[Optional[Dict[int, int]]] = []
    outputs: List[Any] = [None] * len(channels)
    done: List[bool] = [False] * len(channels)
    pending: List[Dict[int, Packet]] = [{} for _ in channels]

    for ci, ch in enumerate(channels):
        if ch.nodes is None:
            mapping = None
            local = ctx.node_id
            size = n
            member = True
        else:
            mapping = {gid: li for li, gid in enumerate(ch.nodes)}
            member = ctx.node_id in mapping
            local = mapping.get(ctx.node_id, -1)
            size = len(ch.nodes)
        if not member:
            gens.append(None)
            done[ci] = True
            to_global.append(ch.nodes)
            to_local.append(mapping)
            continue
        sub = SubContext(ctx, ch.name, local, size, ch.capacity)
        gen = ch.factory(sub)
        gens.append(gen)
        to_global.append(ch.nodes)
        to_local.append(mapping)
        try:
            pending[ci] = _translate_out(next(gen), ch, to_global[ci])
        except StopIteration as stop:
            outputs[ci] = stop.value
            done[ci] = True
            gens[ci] = None

    while not all(done):
        # Frame and merge this round's sub-outboxes.
        merged: Dict[int, List[int]] = {}
        for ci, outbox in enumerate(pending):
            for dest, pkt in outbox.items():
                merged.setdefault(dest, []).extend(
                    [ci, len(pkt.words)] + list(pkt.words)
                )
        round_out = {
            dest: Packet(tuple(words)) for dest, words in merged.items()
        }
        pending = [{} for _ in channels]

        inbox = yield round_out

        # Demultiplex into per-channel inboxes.
        sub_inboxes: List[Dict[int, Packet]] = [{} for _ in channels]
        for src, pkt in inbox.items():
            words = pkt.words
            i = 0
            while i < len(words):
                if i + 2 > len(words):
                    raise ProtocolError("truncated channel frame")
                ci, length = words[i], words[i + 1]
                if not 0 <= ci < len(channels):
                    raise ProtocolError(f"unknown channel {ci}")
                body = words[i + 2 : i + 2 + length]
                if len(body) != length:
                    raise ProtocolError("truncated channel frame body")
                i += 2 + length
                mapping = to_local[ci]
                local_src = src if mapping is None else mapping.get(src)
                if local_src is None:
                    raise ProtocolError(
                        f"channel {channels[ci].name} packet from non-member "
                        f"{src}"
                    )
                sub_inboxes[ci][local_src] = Packet(tuple(body))

        # Advance every live channel.
        for ci, gen in enumerate(gens):
            if gen is None:
                if sub_inboxes[ci]:
                    raise ProtocolError(
                        f"packet for finished channel {channels[ci].name}"
                    )
                continue
            try:
                pending[ci] = _translate_out(
                    gen.send(sub_inboxes[ci]), channels[ci], to_global[ci]
                )
            except StopIteration as stop:
                outputs[ci] = stop.value
                done[ci] = True
                gens[ci] = None
    return outputs


def _translate_out(
    raw: Optional[Dict[int, Packet]],
    channel: Channel,
    nodes: Optional[Tuple[int, ...]],
) -> Dict[int, Packet]:
    """Map a sub-outbox from virtual to global destination ids."""
    if not raw:
        return {}
    out: Dict[int, Packet] = {}
    for dest, pkt in raw.items():
        if isinstance(pkt, tuple):
            pkt = Packet(pkt)
        if len(pkt.words) > channel.capacity:
            raise ProtocolError(
                f"channel {channel.name} packet of {len(pkt.words)} words "
                f"exceeds channel capacity {channel.capacity}"
            )
        gdest = dest if nodes is None else nodes[dest]
        out[gdest] = pkt
    return out
