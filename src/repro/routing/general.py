"""Theorem 3.7 for arbitrary ``n``: the ``V1 / V2 / V3`` overlay.

When ``sqrt(n)`` is not an integer, let ``m = floor(sqrt(n))^2`` and overlay
two perfect-square windows ``V1 = {0..m-1}`` and ``V2 = {n-m..n-1}``:

* messages with both endpoints in ``V1`` run the square algorithm inside
  ``V1`` (core-to-core pairs are canonically assigned here and deleted from
  the ``V2`` instance, as the paper prescribes);
* messages with both endpoints in ``V2`` run the square algorithm inside
  ``V2``;
* the remaining *cross* messages join the low fringe ``V1 \\ V2`` with the
  high fringe ``V2 \\ V1`` and take a dedicated 6-round detour: scatter over
  all nodes (1 round), concentrate onto the destination fringe (1 round),
  then deliver within each fringe by Corollary 3.4 (4 rounds).

All three run concurrently through the channel multiplexer, so the total is
``max(16, 6) = 16`` rounds with a constant-factor message-size increase —
exactly the accounting in the paper's proof.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..core.context import NodeContext
from ..core.engine import EngineSpec
from ..core.errors import ProtocolError
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult
from ..core.topology import OverlayDecomposition, is_perfect_square
from ..core.wire import fast_packet, header_codec
from .lenzen import WireMsg, _unwire, header_base, lenzen_wire_program
from .multiplex import Channel, SubContext, multiplex
from .primitives import route_unknown
from .problem import Message, RoutingInstance

#: Paper round budget for any n (Theorem 3.7).
ROUNDS_GENERAL = 16

#: Channel word budget for each overlaid activity and the resulting engine
#: capacity.  Three channels with [id, len] framing fit in one physical
#: packet of constant size — the paper's "message size increases by a factor
#: of at most 2" with our explicit framing overhead on top.
CHANNEL_CAPACITY = 8
ENGINE_CAPACITY = 3 * (CHANNEL_CAPACITY + 2) + 2


def _window_program(
    window: Tuple[int, ...],
    wire_messages: List[List[WireMsg]],
    load_bound: int,
) -> Callable[[SubContext], Generator]:
    """Square algorithm over one window, fed with translated messages."""
    m = len(window)

    def factory(sub: SubContext) -> Generator:
        program = lenzen_wire_program(m, wire_messages, load_bound, strict=False)
        return program(sub)

    return factory


def _cross_program(
    overlay: OverlayDecomposition,
    my_wire: List[List[WireMsg]],
    hbase: int,
) -> Callable[[SubContext], Generator]:
    """The 6-round fringe-to-fringe detour (proof of Theorem 3.7)."""
    n = overlay.n
    low = tuple(overlay.low_fringe)
    high = tuple(overlay.high_fringe)
    low_set, high_set = set(low), set(high)
    groups = (low, high)

    def factory(sub: SubContext) -> Generator:
        me = sub.node_id
        dest_word = header_codec(hbase).dest_of

        def dest_of(w: Tuple[int, ...]) -> int:
            return dest_word(w[0])

        def program() -> Generator:
            held = sorted(my_wire[me])
            # Round 1: spread my j-th cross message to node j.
            sub.enter_phase("cross.scatter")
            outbox: Dict[int, Packet] = {}
            for j, w in enumerate(held):
                outbox[j] = fast_packet(w)
            inbox = yield outbox
            received = sorted(tuple(p.words) for p in inbox.values())

            # Round 2: concentrate onto the destination fringes — my k-th
            # low-destined message to low[k], k-th high-destined to high[k].
            sub.enter_phase("cross.concentrate")
            for_low = [w for w in received if dest_of(w) in low_set]
            for_high = [w for w in received if dest_of(w) in high_set]
            if len(for_low) > len(low) or len(for_high) > len(high):
                raise ProtocolError(
                    "cross detour: more messages per fringe than fringe "
                    "nodes (violates the paper's counting argument)"
                )
            outbox = {}
            for k, w in enumerate(for_low):
                outbox[low[k]] = fast_packet(w)
            for k, w in enumerate(for_high):
                outbox[high[k]] = fast_packet(w)
            inbox = yield outbox
            held = sorted(tuple(p.words) for p in inbox.values())

            # Rounds 3-6: deliver within each fringe (Corollary 3.4).
            sub.enter_phase("cross.deliver")
            if me in low_set:
                my_group: Optional[int] = 0
                my_rank: Optional[int] = low.index(me)
            elif me in high_set:
                my_group, my_rank = 1, high.index(me)
            else:
                my_group = my_rank = None
            items = []
            for w in held:
                d = dest_of(w)
                if my_group == 0 and d in low_set:
                    items.append((low.index(d), w))
                elif my_group == 1 and d in high_set:
                    items.append((high.index(d), w))
                elif my_group is not None:
                    raise ProtocolError(
                        "cross detour: message concentrated on wrong fringe"
                    )
            delivered = yield from route_unknown(
                sub, groups, my_group, my_rank, items, "cross", item_width=2
            )
            for it in delivered:
                if dest_of(it) != me:
                    raise ProtocolError(
                        f"cross detour delivered foreign message to {me}"
                    )
            return [tuple(it) for it in delivered]

        return program()

    return factory


def lenzen_general_program(
    instance: RoutingInstance,
) -> Callable[[NodeContext], Generator]:
    """Theorem 3.7 for non-square ``n``: three multiplexed channels."""
    n = instance.n
    overlay = OverlayDecomposition(n)
    m = overlay.m
    v1 = tuple(overlay.v1)
    v2 = tuple(overlay.v2)
    off2 = n - m  # global id -> V2-virtual id offset
    load_bound = max(n, 1)
    sub_hbase = header_base(m, load_bound)
    cross_hbase = header_base(n, load_bound)

    sub_pack = header_codec(sub_hbase).pack  # hoisted codecs, one per base
    cross_pack = header_codec(cross_hbase).pack

    wire_v1: List[List[WireMsg]] = [[] for _ in range(m)]
    wire_v2: List[List[WireMsg]] = [[] for _ in range(m)]
    wire_cross: List[List[WireMsg]] = [[] for _ in range(n)]
    for i, msgs in enumerate(instance.messages_by_source):
        for msg in msgs:
            side = overlay.classify_pair(msg.source, msg.dest)
            if side == "v1":
                wire_v1[msg.source].append(
                    (sub_pack(msg.source, msg.dest, msg.seq), msg.payload)
                )
            elif side == "v2":
                wire_v2[msg.source - off2].append(
                    (
                        sub_pack(
                            msg.source - off2, msg.dest - off2, msg.seq
                        ),
                        msg.payload,
                    )
                )
            else:
                wire_cross[msg.source].append(
                    (cross_pack(msg.source, msg.dest, msg.seq), msg.payload)
                )

    channels = [
        Channel(
            "V1",
            v1,
            _window_program(v1, wire_v1, load_bound),
            CHANNEL_CAPACITY,
        ),
        Channel(
            "V2",
            v2,
            _window_program(v2, wire_v2, load_bound),
            CHANNEL_CAPACITY,
        ),
        Channel(
            "X",
            None,
            _cross_program(overlay, wire_cross, cross_hbase),
            CHANNEL_CAPACITY,
        ),
    ]

    def program(ctx: NodeContext) -> Generator:
        outs = yield from multiplex(ctx, channels)
        final: List[Message] = []
        if outs[0] is not None:
            final.extend(outs[0])  # V1 ids are global ids already
        if outs[1] is not None:
            for msg in outs[1]:
                final.append(
                    Message(
                        source=msg.source + off2,
                        dest=msg.dest + off2,
                        seq=msg.seq,
                        payload=msg.payload,
                    )
                )
        if outs[2] is not None:
            final.extend(_unwire(w, cross_hbase) for w in outs[2])
        for msg in final:
            if msg.dest != ctx.node_id:
                raise ProtocolError(
                    f"node {ctx.node_id} ended with message for {msg.dest}"
                )
        return sorted(final)

    return program


def route_lenzen(
    instance: RoutingInstance,
    meter: bool = False,
    verify_shared: bool = False,
    engine: EngineSpec = None,
) -> RunResult:
    """Theorem 3.7: route any Problem 3.1 instance in at most 16 rounds.

    Dispatches to the plain square algorithm when ``sqrt(n)`` is an integer
    and to the three-channel overlay otherwise.
    """
    n = instance.n
    if is_perfect_square(n):
        clique = CongestedClique(
            n, capacity=CHANNEL_CAPACITY, meter=meter,
            verify_shared=verify_shared, engine=engine,
        )
        from .lenzen import lenzen_square_program

        return clique.run(lenzen_square_program(instance))
    if n - OverlayDecomposition(n).m > OverlayDecomposition(n).m:
        # n in {2, 3}: the windows are single nodes and the fringes overlap,
        # so the overlay construction degenerates.  Direct routing finishes
        # in at most n <= 3 rounds — comfortably within the constant bound.
        from .naive import route_naive

        return route_naive(instance, engine=engine)
    clique = CongestedClique(
        n, capacity=ENGINE_CAPACITY, meter=meter,
        verify_shared=verify_shared, engine=engine,
    )
    return clique.run(lenzen_general_program(instance))
