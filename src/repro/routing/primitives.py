"""Corollaries 3.3 and 3.4: constant-round routing primitives within subsets.

These are the communication workhorses of the whole paper:

* :func:`route_known` (Corollary 3.3) — 2 rounds.  Within each group ``W``
  whose members commonly know the full source/destination demand matrix,
  color the demand multigraph (Koenig) and relay every item through the
  intermediate node given by its color: round 1 sends item of color ``c`` to
  global node ``c``, round 2 delivers.  Multiple disjoint groups run
  concurrently; intermediates may lie outside ``W`` (every edge used has at
  least one endpoint in ``W``, as the corollary requires).
* :func:`route_unknown` (Corollary 3.4) — 4 rounds.  For ``|W| <= sqrt(n)``
  the demand matrix itself is small enough to announce first (2 rounds via
  Corollary 3.3), after which the known-pattern primitive applies.
* :func:`announce_within_group` — the recurring "each node announces a small
  vector to every member of its group" step (Algorithm 2 Step 3, Algorithm 3
  Steps 2 and 5), implemented as one known-pattern invocation (2 rounds).
* :func:`broadcast_word` — one word from every node to all nodes, 1 round.

All protocols here are generators intended to be driven with ``yield from``
inside a larger per-node protocol.  **Every node of the clique must run the
primitive** (non-members pass ``my_group=None``) because any node may serve
as an intermediate.

Items are tuples of words; on the wire each packet is
``(final_destination, *item_words)``, so items may carry at most
``capacity - 1`` words.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, Hashable, List, Optional, Sequence, Tuple

from ..core.context import NodeContext, planned
from ..core.errors import ModelViolation, ProtocolError
from ..core.message import Packet, pack_pair, unpack_pair
from ..core.wire import bad_segment_width, fast_packet, regroup_segments
from ..graphtools.coloring import greedy_edge_coloring, koenig_coloring_padded
from ..graphtools.multigraph import from_demand_matrix

Item = Tuple[int, ...]
Groups = Tuple[Tuple[int, ...], ...]
Demand = Tuple[Tuple[int, ...], ...]

#: rounds consumed by each primitive (the paper's round budget).
ROUNDS_KNOWN = 2
ROUNDS_UNKNOWN = 4
ROUNDS_ANNOUNCE = 2


def _color_map(
    demand: Demand, scheme: str = "koenig"
) -> Tuple[Dict[Tuple[int, int], List[int]], int]:
    """Color the demand multigraph of one group (plan-cached).

    Returns ``(colors_by_pair, num_colors)`` where ``colors_by_pair[(a, b)]``
    lists the colors of the parallel edges from sender rank ``a`` to receiver
    rank ``b``, in canonical (row-major, repetition) order.  All group
    members call this with identical input and obtain identical output.

    ``scheme="koenig"`` uses exactly ``Delta`` colors (Theorem 3.2);
    ``scheme="greedy"`` is footnote 3's cheap alternative with up to
    ``2*Delta - 1`` colors — still a proper coloring, so the schedule stays
    conflict-free, at the cost of potentially one extra lane.

    The coloring is a pure function of ``(demand, scheme)`` and dominates
    the router's local work, so it is memoized in the process-wide
    :class:`~repro.core.context.PlanCache`: repeated instances of the same
    structure (scenario sweeps, benchmark repeats, batched service traffic)
    pay the Koenig recursion once.  The result is shared by reference —
    callers must not mutate it.
    """
    return planned(
        ("color_map", demand, scheme), lambda: _color_map_impl(demand, scheme)
    )


def _color_map_impl(
    demand: Demand, scheme: str
) -> Tuple[Dict[Tuple[int, int], List[int]], int]:
    graph = from_demand_matrix([list(row) for row in demand])
    if not graph.num_edges:
        return {}, 0
    if scheme == "greedy":
        colors = greedy_edge_coloring(graph)
        degree = max(colors) + 1
    else:
        degree = graph.max_degree()
        colors = koenig_coloring_padded(graph)
    by_pair: Dict[Tuple[int, int], List[int]] = {}
    for (a, b), c in zip(graph.edges, colors):
        by_pair.setdefault((a, b), []).append(c)
    return by_pair, degree


def route_known(
    ctx: NodeContext,
    groups: Groups,
    my_group: Optional[int],
    my_rank: Optional[int],
    my_items: Sequence[Tuple[int, Item]],
    demand: Optional[Demand],
    pattern_key: Hashable,
    item_width: Optional[int] = None,
    coloring: str = "koenig",
) -> Generator[Dict[int, Packet], Dict[int, Packet], List[Item]]:
    """Corollary 3.3: deliver items within groups in exactly 2 rounds.

    Args:
        groups: disjoint member-id tuples (common knowledge at all nodes).
        my_group / my_rank: this node's group index and rank, or ``None`` if
            it participates only as a potential intermediate.
        my_items: ``(dest_rank, item)`` pairs this node must deliver within
            its group, ordered consistently with ``demand`` (the k-th item
            for dest rank b corresponds to the k-th parallel edge).
        demand: this group's demand matrix ``demand[a][b]`` (commonly known
            by all its members).  ``None`` only for non-members.
        pattern_key: hashable identifying this invocation's common inputs for
            the shared-computation cache.
        item_width: fixed word width of every item in this invocation.  When
            the demand degree exceeds ``n`` the primitive packs several items
            per packet ("lanes") — the paper's constant-factor message-size
            increase from bundling.  ``None`` means variable width, lanes
            disabled (degree must then be at most ``n``).

    Returns:
        Items received by this node, ordered deterministically by the color
        they traveled through.

    Lane mechanics: with degree ``D`` over ``n`` available intermediates,
    ``lanes = ceil(D / n)`` and color ``c`` routes through intermediate
    ``c mod n``.  Each color class is a perfect matching, so an intermediate
    carries at most ``lanes`` items per sender (round 1) and per receiver
    (round 2); items are concatenated as fixed-width ``(dest, *item)``
    segments, which needs ``lanes * (item_width + 1) <= capacity``.
    """
    outbox: Dict[int, Packet] = {}
    seg = None if item_width is None else item_width + 1
    if my_group is not None:
        if demand is None or my_rank is None:
            raise ProtocolError("group members must supply demand and rank")
        member_ids = groups[my_group]
        by_pair, degree = ctx.shared_compute(
            ("cor33", pattern_key, my_group, demand, coloring),
            lambda: _color_map(demand, coloring),
        )
        lanes = max(1, -(-degree // ctx.n))  # ceil
        if lanes > 1 and seg is None:
            raise ModelViolation(
                f"demand degree {degree} exceeds n={ctx.n} and no item_width "
                "was given; Corollary 3.3 needs bundling (lanes) here"
            )
        if seg is not None and lanes * seg > ctx.capacity:
            raise ModelViolation(
                f"{lanes} lanes of width {seg} exceed capacity "
                f"{ctx.capacity}"
            )
        # Sanity: my item multiset must match my demand row.
        counts: Dict[int, int] = {}
        for dest_rank, item in my_items:
            counts[dest_rank] = counts.get(dest_rank, 0) + 1
            if item_width is not None and len(item) != item_width:
                raise ModelViolation(
                    f"item of {len(item)} words, declared width {item_width}"
                )
            if len(item) > ctx.capacity - 1:
                raise ModelViolation(
                    f"item of {len(item)} words exceeds capacity-1"
                )
        for b, want in enumerate(demand[my_rank]):
            if counts.get(b, 0) != want:
                raise ProtocolError(
                    f"node rank {my_rank} holds {counts.get(b, 0)} items "
                    f"for rank {b} but demand says {want}"
                )
        lanes_out: Dict[int, List[int]] = {}
        seq_per_dest: Dict[int, int] = {}
        for dest_rank, item in my_items:
            k = seq_per_dest.get(dest_rank, 0)
            seq_per_dest[dest_rank] = k + 1
            color = by_pair[(my_rank, dest_rank)][k]
            intermediate = color % ctx.n
            dest_global = member_ids[dest_rank]
            lanes_out.setdefault(intermediate, []).extend(
                (dest_global,) + tuple(item)
            )
        for intermediate, words in lanes_out.items():
            outbox[intermediate] = fast_packet(tuple(words))

    inbox = yield outbox

    # Intermediate role: forward every segment to its embedded destination.
    # The wire-level regrouping forwards whole packets by reference when all
    # of a packet's segments share one destination (the common case).
    forward = regroup_segments(inbox, seg)

    inbox2 = yield forward

    # Inlined segment parse (hot path: every delivered packet every call).
    received: List[Item] = []
    for src in sorted(inbox2):
        words = inbox2[src].words
        if not words:
            continue
        if seg is None:
            received.append(tuple(words[1:]))
            continue
        if len(words) % seg != 0:
            raise bad_segment_width(len(words), seg)
        for i in range(0, len(words), seg):
            received.append(tuple(words[i + 1 : i + seg]))
    return received


def _chunk_meta_base(w: int, num_chunks: int) -> int:
    return max(w, num_chunks, 1)


def _vector_chunks(
    vector: Sequence[int], chunk_size: int
) -> List[List[int]]:
    return [
        list(vector[i : i + chunk_size])
        for i in range(0, len(vector), chunk_size)
    ] or [[]]


def announce_within_group(
    ctx: NodeContext,
    groups: Groups,
    my_group: Optional[int],
    my_rank: Optional[int],
    vector: Sequence[int],
    pattern_key: Hashable,
) -> Generator[Dict[int, Packet], Dict[int, Packet], List[List[int]]]:
    """Every group member announces ``vector`` to all members (2 rounds).

    All members must announce vectors of one common length (common
    knowledge).  Returns ``matrix`` with ``matrix[a]`` = rank ``a``'s vector;
    non-members return an empty list.

    This is the paper's "each node in W announces |W| numbers to all nodes
    in W" step, realized through Corollary 3.3 with the uniform demand of
    ``ceil(len(vector)/chunk)`` items per ordered member pair.
    """
    if my_group is None:
        # Non-members still relay; they derive the fixed announce segment
        # width from the capacity (identical at every node).
        yield from route_known(
            ctx,
            groups,
            None,
            None,
            [],
            None,
            (pattern_key, "ann"),
            item_width=1 + max(1, ctx.capacity - 3),
        )
        return []

    w = len(groups[my_group])
    # One word for the wire header, one for the (rank, chunk) meta word, and
    # one of headroom so piggyback rounds stay within capacity.
    chunk_size = max(1, ctx.capacity - 3)
    chunks = _vector_chunks(vector, chunk_size)
    # Fixed-width segments: pad the last chunk with zeros.
    for chunk in chunks:
        chunk.extend([0] * (chunk_size - len(chunk)))
    num_chunks = len(chunks)
    base = _chunk_meta_base(w, num_chunks)
    items: List[Tuple[int, Item]] = []
    for b in range(w):
        for q, chunk in enumerate(chunks):
            meta = pack_pair(my_rank, q, base)
            items.append((b, (meta,) + tuple(chunk)))
    demand: Demand = tuple(tuple(num_chunks for _ in range(w)) for _ in range(w))
    received = yield from route_known(
        ctx,
        groups,
        my_group,
        my_rank,
        items,
        demand,
        (pattern_key, "ann"),
        item_width=1 + chunk_size,
    )
    matrix: List[List[Optional[int]]] = [
        [None] * len(vector) for _ in range(w)
    ]
    for item in received:
        meta, payload = item[0], item[1:]
        a, q = unpack_pair(meta, base)
        start = q * chunk_size
        for off, value in enumerate(payload):
            if start + off < len(vector):
                matrix[a][start + off] = value
    for a, row in enumerate(matrix):
        if any(v is None for v in row):
            raise ProtocolError(f"lost announcement chunk from rank {a}")
    return [list(map(int, row)) for row in matrix]  # type: ignore[arg-type]


def route_unknown(
    ctx: NodeContext,
    groups: Groups,
    my_group: Optional[int],
    my_rank: Optional[int],
    my_items: Sequence[Tuple[int, Item]],
    pattern_key: Hashable,
    item_width: Optional[int] = None,
) -> Generator[Dict[int, Packet], Dict[int, Packet], List[Item]]:
    """Corollary 3.4: deliver items within small groups in exactly 4 rounds.

    Rounds 1-2 announce per-destination item counts (establishing the common
    knowledge Corollary 3.3 needs); rounds 3-4 run the known-pattern
    primitive on the real items.  Requires the announced demand to satisfy
    the degree bound (which the paper guarantees for ``|W| <= sqrt(n)``).
    """
    if my_group is None:
        yield from announce_within_group(
            ctx, groups, None, None, [], (pattern_key, "cnt")
        )
        # Payload phase relay, parsing with the caller-declared width.
        result = yield from route_known(
            ctx,
            groups,
            None,
            None,
            [],
            None,
            (pattern_key, "pay"),
            item_width=item_width,
        )
        return result

    w = len(groups[my_group])
    counts = [0] * w
    for dest_rank, _ in my_items:
        counts[dest_rank] += 1
    matrix = yield from announce_within_group(
        ctx, groups, my_group, my_rank, counts, (pattern_key, "cnt")
    )
    demand: Demand = tuple(tuple(row) for row in matrix)
    result = yield from route_known(
        ctx,
        groups,
        my_group,
        my_rank,
        my_items,
        demand,
        (pattern_key, "pay"),
        item_width=item_width,
    )
    return result


def broadcast_word(
    ctx: NodeContext, word: int
) -> Generator[Dict[int, Packet], Dict[int, Packet], List[int]]:
    """Every node tells every node one word; 1 round.

    Returns the list ``values`` with ``values[i]`` = node ``i``'s word.
    All ``n`` edges carry the same immutable one-word packet object (the
    engines deliver by reference, so sharing it is free).
    """
    pkt = fast_packet((word,))
    outbox = {dst: pkt for dst in range(ctx.n)}
    inbox = yield outbox
    values = [0] * ctx.n
    for src, pkt in inbox.items():
        values[src] = pkt.words[0]
    if len(inbox) != ctx.n:
        raise ProtocolError(
            f"broadcast expected {ctx.n} packets, got {len(inbox)}"
        )
    return values


def rounds_for_announce(w: int, vector_len: int, capacity: int, n: int) -> int:
    """Round cost of :func:`announce_within_group` (always 2); validates
    that the chunked demand respects the Corollary 3.3 degree bound."""
    chunk_size = max(1, capacity - 3)
    num_chunks = max(1, math.ceil(vector_len / chunk_size))
    if w * num_chunks > n:
        raise ModelViolation(
            f"announcement demand {w * num_chunks} exceeds n={n}"
        )
    return ROUNDS_ANNOUNCE
