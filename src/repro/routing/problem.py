"""Problem 3.1 — the Information Distribution Task — and instance generators.

Each node ``i`` is the source of up to ``n`` messages with known destinations;
each node is the destination of up to ``n`` messages.  Messages carry their
(source, destination, sequence) triple explicitly, as the paper requires, so
they are globally distinguishable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.errors import InvalidInstance


@dataclass(frozen=True, order=True)
class Message:
    """One routable message.

    The lexicographic order (source, dest, seq) is the paper's global
    message order.  ``payload`` is a single word of user data.
    """

    source: int
    dest: int
    seq: int
    payload: int = 0


class RoutingInstance:
    """A validated instance of Problem 3.1.

    Args:
        n: number of nodes.
        messages_by_source: ``messages_by_source[i]`` is the list of messages
            node ``i`` must deliver (its set ``S_i``).
        exact: require *exactly* ``n`` messages per source and destination
            (the paper's normal form); if False, allow "up to n" (the relaxed
            form the paper notes is trivial to support).
    """

    def __init__(
        self,
        n: int,
        messages_by_source: Sequence[Sequence[Message]],
        exact: bool = True,
        max_load: Optional[int] = None,
    ) -> None:
        if len(messages_by_source) != n:
            raise InvalidInstance(
                f"{len(messages_by_source)} source lists for n={n}"
            )
        self.n = n
        self.messages_by_source: List[List[Message]] = [
            list(msgs) for msgs in messages_by_source
        ]
        self.exact = exact
        #: per-node send/receive cap; Theorem 3.7's overlay runs the square
        #: algorithm with up to ~2n messages per node (constant-factor
        #: message-size increase), so the cap may exceed ``n``.
        self.max_load = max_load if max_load is not None else n
        self._validate()

    def _validate(self) -> None:
        n = self.n
        cap = self.max_load
        recv_counts = [0] * n
        for i, msgs in enumerate(self.messages_by_source):
            if self.exact and len(msgs) != n:
                raise InvalidInstance(
                    f"node {i} sources {len(msgs)} messages, expected {n}"
                )
            if len(msgs) > cap:
                raise InvalidInstance(
                    f"node {i} sources {len(msgs)} messages > cap = {cap}"
                )
            seen_seq = set()
            for m in msgs:
                if m.source != i:
                    raise InvalidInstance(
                        f"message {m} listed under wrong source {i}"
                    )
                if not 0 <= m.dest < n:
                    raise InvalidInstance(f"message {m} has invalid dest")
                if m.seq in seen_seq:
                    raise InvalidInstance(
                        f"duplicate seq {m.seq} at source {i}"
                    )
                seen_seq.add(m.seq)
                recv_counts[m.dest] += 1
        for k, c in enumerate(recv_counts):
            if self.exact and c != n:
                raise InvalidInstance(
                    f"node {k} is destination of {c} messages, expected {n}"
                )
            if c > cap:
                raise InvalidInstance(
                    f"node {k} is destination of {c} messages > cap = {cap}"
                )

    def expected_deliveries(self) -> List[List[Message]]:
        """``R_k`` for every k: the messages node ``k`` must end up with,
        in global lexicographic order."""
        out: List[List[Message]] = [[] for _ in range(self.n)]
        for msgs in self.messages_by_source:
            for m in msgs:
                out[m.dest].append(m)
        for lst in out:
            lst.sort()
        return out

    def demand_matrix(self) -> List[List[int]]:
        """``demand[i][k]`` = number of messages from source i to dest k."""
        demand = [[0] * self.n for _ in range(self.n)]
        for msgs in self.messages_by_source:
            for m in msgs:
                demand[m.source][m.dest] += 1
        return demand


def _instance_from_dest_lists(
    n: int, dests: List[List[int]], payload_fn=None
) -> RoutingInstance:
    msgs = []
    for i in range(n):
        row = []
        for j, d in enumerate(dests[i]):
            payload = payload_fn(i, j, d) if payload_fn else (i * n + j)
            row.append(Message(source=i, dest=d, seq=j, payload=payload))
        msgs.append(row)
    return RoutingInstance(n, msgs)


def uniform_instance(n: int, seed: int = 0) -> RoutingInstance:
    """Random instance: destinations form a random n x n doubly-balanced
    assignment (each node sends n and receives n messages).

    Built from ``n`` random permutations — message ``j`` of every source is
    routed by the ``j``-th permutation, so receive counts are exactly ``n``.
    """
    rng = random.Random(seed)
    dests: List[List[int]] = [[] for _ in range(n)]
    for _ in range(n):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(n):
            dests[i].append(perm[i])
    return _instance_from_dest_lists(n, dests)


def permutation_instance(n: int, shift: int = 1) -> RoutingInstance:
    """All ``n`` messages of node ``i`` go to node ``(i + shift) mod n``.

    The canonical "hotspot per node" worst case for naive direct routing:
    each source-destination pair must push ``n`` messages over one edge.
    """
    dests = [[(i + shift) % n] * n for i in range(n)]
    return _instance_from_dest_lists(n, dests)


def transpose_instance(n: int) -> RoutingInstance:
    """Message ``j`` of node ``i`` goes to node ``j`` (an all-to-all
    "matrix transpose" pattern; already perfectly balanced per edge)."""
    dests = [list(range(n)) for _ in range(n)]
    return _instance_from_dest_lists(n, dests)


def block_skew_instance(n: int, seed: int = 0) -> RoutingInstance:
    """Skewed instance: traffic concentrates between random group pairs.

    Stresses Algorithm 2 (inter-group balancing): the demand between node
    groups is far from uniform, while per-node totals stay exactly ``n``.
    Constructed from random permutations biased to map blocks onto blocks.
    """
    rng = random.Random(seed)
    dests: List[List[int]] = [[] for _ in range(n)]
    nodes = list(range(n))
    for _ in range(n):
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        # Sort destinations so nearby sources hit nearby destinations,
        # concentrating block-to-block demand while staying a permutation.
        block = max(1, n // 4)
        for start in range(0, n, block):
            chunk = sorted(shuffled[start : start + block])
            shuffled[start : start + block] = chunk
        for i in range(n):
            dests[i].append(shuffled[i])
    return _instance_from_dest_lists(n, dests)


def bursty_instance(
    n: int, seed: int = 0, hot_fraction: float = 0.125
) -> RoutingInstance:
    """Relaxed instance with bursty, hotspot-concentrated traffic.

    A small set of *hot* sources emits large bursts (up to ``n`` messages
    each), mostly aimed at a small set of hot destinations; the remaining
    nodes send only a handful of messages or none at all.  Per-node loads
    stay within the Problem 3.1 cap of ``n``, but the instance is far from
    the exact normal form (``exact=False``) — this is the "bursty multiplex
    traffic" scenario family, and the workload where an engine's idle-node
    handling matters most.
    """
    rng = random.Random(seed)
    num_hot = max(2, int(n * hot_fraction))
    hot = rng.sample(range(n), num_hot)
    hot_dests = rng.sample(range(n), num_hot)
    recv_counts = [0] * n
    msgs: List[List[Message]] = [[] for _ in range(n)]

    def pick_dest() -> int:
        d = rng.choice(hot_dests) if rng.random() < 0.75 else rng.randrange(n)
        if recv_counts[d] >= n:  # respect the per-destination cap
            d = min(range(n), key=recv_counts.__getitem__)
        return d

    for i in range(n):
        burst = rng.randrange(n // 2, n + 1) if i in hot else rng.randrange(3)
        for j in range(burst):
            d = pick_dest()
            recv_counts[d] += 1
            msgs[i].append(Message(source=i, dest=d, seq=j, payload=i * n + j))
    return RoutingInstance(n, msgs, exact=False)


def from_demand(
    n: int, demand: Sequence[Sequence[int]], seed: Optional[int] = None
) -> RoutingInstance:
    """Instance with the given source->dest message counts.

    Row sums and column sums must all equal ``n``.
    """
    dests: List[List[int]] = []
    for i in range(n):
        row: List[int] = []
        for k in range(n):
            row.extend([k] * demand[i][k])
        dests.append(row)
    if seed is not None:
        rng = random.Random(seed)
        for row in dests:
            rng.shuffle(row)
    return _instance_from_dest_lists(n, dests)


def verify_delivery(
    instance: RoutingInstance, outputs: Sequence[Sequence[Message]]
) -> None:
    """Check that every node received exactly its ``R_k`` (any order).

    Raises :class:`~repro.core.errors.VerificationError` on mismatch.
    """
    from ..core.errors import VerificationError

    expected = instance.expected_deliveries()
    for k in range(instance.n):
        got = sorted(outputs[k])
        if got != expected[k]:
            missing = set(expected[k]) - set(got)
            extra = set(got) - set(expected[k])
            raise VerificationError(
                f"node {k}: {len(missing)} missing, {len(extra)} extra "
                f"messages (e.g. missing={list(missing)[:3]})"
            )
