"""Baseline: naive direct routing with per-edge queueing.

Every source sends each message straight to its destination, one per edge
per round.  The round count equals the maximum, over ordered node pairs, of
the number of messages on that pair — up to ``n`` rounds on the hotspot
(permutation) instance, versus the deterministic algorithm's constant 16.
This is benchmark E8's counterpoint.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List

from ..core.context import NodeContext
from ..core.engine import EngineSpec
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult
from .lenzen import _unwire, _wire, header_base
from .problem import Message, RoutingInstance


def naive_program(
    instance: RoutingInstance,
) -> Callable[[NodeContext], Generator]:
    """Direct-send program; runs until every queue drains.

    Termination is coordinated without global knowledge: each node knows its
    own longest queue and the instance-wide bound ``n`` is not assumed;
    instead every node keeps participating while it still has traffic, and a
    1-word "rounds left" piggyback is unnecessary because the engine lets
    nodes finish independently (a finished node just stops yielding).
    """
    n = instance.n
    hbase = header_base(n, instance.max_load)
    # Receive counts are a function of the instance, not of the node:
    # compute them once here instead of scanning all n source lists inside
    # every node's generator (which made instance setup O(n^3)).
    recv_counts = [0] * n
    for msgs in instance.messages_by_source:
        for m in msgs:
            recv_counts[m.dest] += 1

    def program(ctx: NodeContext) -> Generator:
        me = ctx.node_id
        queues: Dict[int, List] = {}
        expected = recv_counts[me]
        for m in instance.messages_by_source[me]:
            queues.setdefault(m.dest, []).append(_wire(m, hbase))
        for q in queues.values():
            q.sort()

        got: List[Message] = []
        while queues or len(got) < expected:
            outbox = {}
            for dest in list(queues):
                outbox[dest] = Packet(queues[dest].pop(0))
                if not queues[dest]:
                    del queues[dest]
            inbox = yield outbox
            for pkt in inbox.values():
                got.append(_unwire(pkt.words, hbase))
        return sorted(got)

    return program


def route_naive(
    instance: RoutingInstance,
    capacity: int = 8,
    engine: EngineSpec = None,
) -> RunResult:
    """Run the naive baseline; rounds = max per-edge demand."""
    clique = CongestedClique(instance.n, capacity=capacity, engine=engine)
    return clique.run(naive_program(instance))


def naive_round_bound(instance: RoutingInstance) -> int:
    """Closed form for the baseline's round count: max messages per edge."""
    demand = instance.demand_matrix()
    return max((max(row) for row in demand if row), default=0)
