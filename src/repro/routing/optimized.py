"""Section 5: routing in 12 rounds with O(n log n) local work and memory.

Theorem 5.4 trades four rounds of the 16-round algorithm against much
cheaper local computation, replacing the big per-message Koenig colorings by

* **round-robin spreading** (Lemma 5.1 / Corollary 5.2): instead of
  computing an exact intra-group pattern, each node deals its destination-
  sorted messages over all ``n`` nodes (one round) which bounce them back to
  the group's members in a fixed rotation (one round).  The fixed pattern
  needs no computation beyond a bucket sort, and every member ends up with
  at most ``~2 sqrt(n)`` messages per destination group — good enough for a
  direct exchange with doubled message size.
* **super-message coloring** (Lemma 5.3): the inter-group pattern colors a
  graph whose edges are *bundles of n messages* (plus fewer than ``n``
  residual messages per group pair, delivered directly over the ``n`` edges
  joining the two groups — footnote 6).  The multigraph has O(n) edges and
  degree about ``sqrt(n)``, so exact Koenig coloring costs O(n log n) local
  steps.

Schedule (12 rounds):

=======  ====================================================  ======
phase    what                                                  rounds
=======  ====================================================  ======
A1/A2    per-group counts, group totals broadcast              2
A3/A4    round-robin spread within groups (Cor. 5.2)           2
A5       inter-group exchange per super-coloring + residuals   1
B1/B2    round-robin spread within groups (Lemma 5.1)          2
B3       direct shipment to destination groups, bundled        1
C        delivery within groups (Corollary 3.4)                4
=======  ====================================================  ======

Loads are balanced within constant factors rather than exactly, so packets
bundle a constant number of two-word messages (the paper's "doubling the
message size"); the engine capacity below accommodates the widest bundle.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Sequence, Tuple

from ..core.context import NodeContext, planned
from ..core.engine import EngineSpec
from ..core.errors import ProtocolError
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult
from ..core.topology import square_groups, square_partition
from ..core.wire import header_codec
from ..graphtools.coloring import koenig_edge_coloring
from ..graphtools.multigraph import BipartiteMultigraph, pad_to_regular
from .lenzen import WireMsg, _send_bundled, header_base
from .primitives import broadcast_word, route_unknown
from .problem import Message, RoutingInstance

#: Paper round budget (Theorem 5.4).
ROUNDS_OPTIMIZED = 12

#: The constant-factor message-size increase of Section 5.
OPT_CAPACITY = 24


def _super_classes(
    totals: Tuple[Tuple[int, ...], ...], n: int, s: int
) -> Dict[Tuple[int, int], List[int]]:
    """Color the super-message graph; list the color classes per group pair.

    Edge (g, g') appears ``floor(totals[g][g'] / n)`` times (each edge is a
    bundle of ``n`` messages).  The graph has at most ``n`` edges and degree
    at most ``sqrt(n)``, is padded to regular and Koenig-colored; class ``c``
    ships through intermediate group ``c mod s``.

    Pure in ``(totals, n)`` (``s = sqrt(n)``), so plan-cached across runs;
    the shared result must not be mutated.
    """
    return planned(
        ("super_classes", totals, n), lambda: _super_classes_impl(totals, n, s)
    )


def _super_classes_impl(
    totals: Tuple[Tuple[int, ...], ...], n: int, s: int
) -> Dict[Tuple[int, int], List[int]]:
    graph = BipartiteMultigraph(s, s)
    for g in range(s):
        for g2 in range(s):
            for _ in range(totals[g][g2] // n):
                graph.add_edge(g, g2)
    by_pair: Dict[Tuple[int, int], List[int]] = {}
    if graph.num_edges:
        padded, real = pad_to_regular(graph)
        colors = koenig_edge_coloring(padded)[:real]
        for (g, g2), c in zip(graph.edges, colors):
            by_pair.setdefault((g, g2), []).append(c % s)
    return by_pair


def _spread_rounds(
    ctx: NodeContext,
    part,
    held: List[WireMsg],
    dgroup,
    capacity: int,
) -> Generator[Dict[int, Packet], Dict[int, Packet], List[WireMsg]]:
    """Lemma 5.1's 2-round round-robin rebalance within each group.

    Round 1 scatters this node's destination-sorted messages over all ``n``
    nodes (message ``k`` to relay ``k mod n``, lane ``k // n``); round 2 the
    relays bounce each message to member ``(relay + sender_rank + lane) mod
    s`` of the sender's group.  Purely positional — O(n) local work, no
    pattern computation, and every member ends with a per-destination-group
    share that is balanced up to a constant factor.
    """
    n, s = ctx.n, part.group_size
    held = sorted(held, key=lambda w: (dgroup(w), w))
    ctx.charge(len(held) + n)
    assignments: Dict[int, List[Tuple[int, ...]]] = {}
    for k, w in enumerate(held):
        assignments.setdefault(k % n, []).append(w)
    inbox = yield _send_bundled(assignments, 2, capacity)

    forward: Dict[int, List[Tuple[int, ...]]] = {}
    me = ctx.node_id
    for src in sorted(inbox):
        words = inbox[src].words
        rank = part.rank_in_group(src)
        group = part.group_of(src)
        for lane in range(len(words) // 2):
            seg = tuple(words[2 * lane : 2 * lane + 2])
            member = part.member(group, (me + rank + lane) % s)
            forward.setdefault(member, []).append(seg)
    inbox = yield _send_bundled(forward, 2, capacity)

    out: List[WireMsg] = []
    for src in sorted(inbox):
        words = inbox[src].words
        for i in range(0, len(words), 2):
            out.append((words[i], words[i + 1]))
    ctx.charge(len(out))
    return sorted(out)


def optimized_program(
    instance: RoutingInstance,
) -> Callable[[NodeContext], Generator]:
    """Theorem 5.4's 12-round router (perfect-square ``n``)."""
    n = instance.n
    part = square_partition(n)
    s = part.group_size
    groups = square_groups(n)
    hbase = header_base(n, instance.max_load)
    codec = header_codec(hbase)
    pack = codec.pack
    wire_messages = [
        sorted(
            (pack(m.source, m.dest, m.seq), m.payload)
            for m in instance.messages_by_source[i]
        )
        for i in range(n)
    ]

    def program(ctx: NodeContext) -> Generator:
        me = ctx.node_id
        g = part.group_of(me)
        r = part.rank_in_group(me)
        held: List[WireMsg] = list(wire_messages[me])
        ctx.observe_live_words(2 * len(held))

        codec_dest = codec.dest_of

        def dest_of(w: Sequence[int]) -> int:
            return codec_dest(w[0])

        def dgroup(w: Sequence[int]) -> int:
            return codec_dest(w[0]) // s

        # ---- A1/A2: group-to-group totals (2 rounds). ----------------------
        ctx.enter_phase("opt.totals")
        my_counts = [0] * s
        for w in held:
            my_counts[dgroup(w)] += 1
        ctx.charge(len(held) + s)
        inbox = yield {
            part.member(g, i): Packet((my_counts[i],)) for i in range(s)
        }
        group_total_for_r = sum(p.words[0] for p in inbox.values())
        totals_flat = yield from broadcast_word(ctx, group_total_for_r)
        totals = tuple(
            tuple(totals_flat[part.member(sg, dg)] for dg in range(s))
            for sg in range(s)
        )

        # Local: super-message coloring — O(n) edges, O(n log n) steps.
        classes = ctx.shared_compute(
            ("opt.super", totals), lambda: _super_classes(totals, n, s)
        )
        ctx.charge(int(n * max(1, (s).bit_length())))

        # ---- A3/A4: round-robin spread within groups (2 rounds). ----------
        ctx.enter_phase("opt.spreadA")
        held = yield from _spread_rounds(ctx, part, held, dgroup, ctx.capacity)

        # ---- A5: inter-group exchange (1 round). --------------------------
        # For each destination group g2: deal my (g -> g2) messages over the
        # color classes of the pair plus, if the pair's total is not an exact
        # multiple of n, one direct-delivery slot (footnote 6).
        ctx.enter_phase("opt.exchange")
        by_dg: Dict[int, List[WireMsg]] = {}
        for w in held:
            by_dg.setdefault(dgroup(w), []).append(w)
        assignments: Dict[int, List[Tuple[int, ...]]] = {}
        for g2, msgs in sorted(by_dg.items()):
            cls = classes.get((g, g2), [])
            direct = 1 if totals[g][g2] % n != 0 or not cls else 0
            targets = len(cls) + direct
            for i, w in enumerate(msgs):
                t = (i + r) % targets
                if t < len(cls):
                    target_group = cls[t]
                else:
                    target_group = g2  # direct to the destination group
                member = part.member(target_group, (i // targets + r) % s)
                assignments.setdefault(member, []).append(w)
        inbox = yield _send_bundled(assignments, 2, ctx.capacity)
        held = []
        for src in sorted(inbox):
            words = inbox[src].words
            for i in range(0, len(words), 2):
                held.append((words[i], words[i + 1]))
        ctx.observe_live_words(2 * len(held))

        # ---- B1/B2: spread again within the holding group (2 rounds). -----
        ctx.enter_phase("opt.spreadB")
        held = yield from _spread_rounds(ctx, part, held, dgroup, ctx.capacity)

        # ---- B3: ship to destination groups, bundled (1 round). -----------
        ctx.enter_phase("opt.ship")
        assignments = {}
        stay: List[WireMsg] = []
        by_dg = {}
        for w in held:
            by_dg.setdefault(dgroup(w), []).append(w)
        for g2, msgs in sorted(by_dg.items()):
            if g2 == g:
                stay.extend(msgs)
                continue
            for k, w in enumerate(sorted(msgs)):
                member = part.member(g2, (k + r) % s)
                assignments.setdefault(member, []).append(w)
        inbox = yield _send_bundled(assignments, 2, ctx.capacity)
        held = list(stay)
        for src in sorted(inbox):
            words = inbox[src].words
            for i in range(0, len(words), 2):
                held.append((words[i], words[i + 1]))
        if any(dgroup(w) != g for w in held):
            raise ProtocolError(
                "Section 5 B3: node holds a message for a foreign group"
            )

        # ---- C: deliver within groups (Corollary 3.4, 4 rounds). ----------
        ctx.enter_phase("opt.deliver")
        items = [(dest_of(w) - g * s, w) for w in held]
        delivered = yield from route_unknown(
            ctx, groups, g, r, items, ("optC", g), item_width=2
        )
        unpack = codec.unpack
        final = [
            Message(*unpack(it[0]), payload=it[1]) for it in delivered
        ]
        if any(m.dest != me for m in final):
            raise ProtocolError("Section 5 delivered a foreign message")
        ctx.observe_live_words(2 * len(final))
        return sorted(final)

    return program


def route_optimized(
    instance: RoutingInstance,
    meter: bool = False,
    verify_shared: bool = False,
    engine: "EngineSpec" = None,
) -> RunResult:
    """Run the Section 5 router (12 rounds, O(n log n) work per node)."""
    clique = CongestedClique(
        instance.n,
        capacity=OPT_CAPACITY,
        meter=meter,
        verify_shared=verify_shared,
        engine=engine,
    )
    return clique.run(optimized_program(instance))
