"""Routing on the congested clique (paper Sections 3 and 5 + baselines)."""

from .general import ROUNDS_GENERAL, lenzen_general_program, route_lenzen
from .lenzen import (
    ROUNDS_SQUARE,
    lenzen_square_program,
    lenzen_wire_program,
    route_lenzen_square,
)
from .naive import naive_round_bound, route_naive
from .optimized import ROUNDS_OPTIMIZED, optimized_program, route_optimized
from .primitives import (
    ROUNDS_ANNOUNCE,
    ROUNDS_KNOWN,
    ROUNDS_UNKNOWN,
    announce_within_group,
    broadcast_word,
    route_known,
    route_unknown,
)
from .problem import (
    Message,
    RoutingInstance,
    block_skew_instance,
    bursty_instance,
    from_demand,
    permutation_instance,
    transpose_instance,
    uniform_instance,
    verify_delivery,
)
from .randomized import route_valiant

__all__ = [
    "Message",
    "RoutingInstance",
    "uniform_instance",
    "permutation_instance",
    "transpose_instance",
    "block_skew_instance",
    "bursty_instance",
    "from_demand",
    "verify_delivery",
    "route_known",
    "route_unknown",
    "announce_within_group",
    "broadcast_word",
    "ROUNDS_KNOWN",
    "ROUNDS_UNKNOWN",
    "ROUNDS_ANNOUNCE",
    "route_lenzen",
    "route_lenzen_square",
    "lenzen_square_program",
    "lenzen_wire_program",
    "lenzen_general_program",
    "ROUNDS_SQUARE",
    "ROUNDS_GENERAL",
    "route_optimized",
    "optimized_program",
    "ROUNDS_OPTIMIZED",
    "route_naive",
    "naive_round_bound",
    "route_valiant",
]
