"""Baseline: randomized two-phase (Valiant-style) routing.

Stand-in for the randomized constant-round router of Lenzen & Wattenhofer
(STOC 2011) that the paper cites as prior work [7].  Every message hops to a
uniform random intermediate and is forwarded from there to its destination;
queues drain one packet per edge per round, so the total round count is
driven by the maximum congestion — constant with high probability, versus
the deterministic algorithm's worst-case 16.  The paper's Section 1 remark
"the randomized solutions are about 2 times as fast" is benchmark E7.

Termination is coordinated *inside the model*: every node piggybacks its
remaining-work counter (queued + just-sent packets) on one word of every
outgoing packet and fills otherwise-unused edges, so each node learns the
global remaining work each round and all nodes stop in the same round.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, List

from ..core.context import NodeContext
from ..core.engine import EngineSpec
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult
from ..core.protocol import attach_piggyback, strip_piggyback
from .lenzen import _unwire, _wire, header_base
from .problem import Message, RoutingInstance


def valiant_program(
    instance: RoutingInstance, seed: int = 0
) -> Callable[[NodeContext], Generator]:
    """Randomized relay routing with piggybacked global termination.

    Each node draws intermediates from a private PRNG stream (seeded per
    node, as real nodes would); ``seed`` makes runs reproducible.
    """
    n = instance.n
    hbase = header_base(n, instance.max_load)

    def program(ctx: NodeContext) -> Generator:
        me = ctx.node_id
        rng = random.Random((seed << 20) | me)

        queues: Dict[int, List] = {}

        def enqueue(dest: int, wire) -> None:
            queues.setdefault(dest, []).append(wire)

        for m in instance.messages_by_source[me]:
            # First hop: a uniform random intermediate (possibly the
            # destination itself, in which case the message needs one hop).
            enqueue(rng.randrange(n), _wire(m, hbase))

        got: List[Message] = []
        while True:
            outbox = {}
            sent = 0
            for dest in list(queues):
                outbox[dest] = Packet(queues[dest].pop(0))
                sent += 1
                if not queues[dest]:
                    del queues[dest]
            remaining = sent + sum(len(q) for q in queues.values())
            inbox = yield attach_piggyback(outbox, remaining, n)
            payloads, reports = strip_piggyback(inbox)
            for src in sorted(payloads):
                w = tuple(payloads[src].words)
                dest = (w[0] // hbase) % hbase
                if dest == me:
                    got.append(_unwire(w, hbase))
                else:
                    enqueue(dest, w)
            if sum(reports.values()) == 0:
                break
        return sorted(got)

    return program


def route_valiant(
    instance: RoutingInstance,
    seed: int = 0,
    capacity: int = 8,
    engine: "EngineSpec" = None,
) -> RunResult:
    """Run the randomized baseline (reproducible via ``seed``).

    The reported round count includes the final all-silent detection round;
    subtract the constant 1 for the pure traffic rounds if comparing against
    closed-form congestion bounds.
    """
    clique = CongestedClique(instance.n, capacity=capacity, engine=engine)
    return clique.run(valiant_program(instance, seed=seed))
