"""Section 6.3: sorting keys of o(log n) bits in 2 rounds with 1-bit messages.

With at most ``K`` distinct keys, disjoint committees of ``m = floor(n/K)``
nodes are statically assigned to each key ``kappa``.  Inside a committee,
``B`` bit-positions (of per-node multiplicities) times ``J`` copy slots (of
the aggregated one-counts) are laid out; then:

* **Round 1**: every node sends, for every key and every bit position ``i``,
  the ``i``-th bit of its multiplicity of that key to the ``J`` nodes
  handling ``(kappa, i)`` — each message is a single bit.
* **Round 2**: the ``j``-th handler of ``(kappa, i)`` counts the received
  ones and sends to *each* node ``k`` the ``j``-th bit of (a) the total
  one-count and (b) the one-count restricted to senders ``< k`` — two bits.

From those bits every node reconstructs the exact global multiplicity of
every key *and* the number of copies held by smaller-id nodes, which orders
all copies: node ``k``'s ``t``-th copy of ``kappa`` has global rank
``prefix_smaller_keys + copies_before_k + t``.

This orders up to ``n * max_count`` keys in 2 rounds with 1-2 bit messages —
the paper's point that tiny keys make sorting *easier*, unlike tiny
messages for routing (Section 6.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Sequence

from ..core.context import NodeContext
from ..core.engine import EngineSpec
from ..core.errors import InvalidInstance, ProtocolError
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult

ROUNDS_SMALL_KEYS = 2


class SmallKeyLayout:
    """Static committee layout: key x bit-position x copy slot -> node id."""

    def __init__(self, n: int, num_keys: int, max_count: int) -> None:
        self.n = n
        self.num_keys = num_keys
        self.max_count = max_count
        #: bits needed for one node's multiplicity of one key.
        self.count_bits = max(1, max_count.bit_length())
        #: bits needed for a one-count over n senders.
        self.sum_bits = max(1, n.bit_length())
        per_key = self.count_bits * self.sum_bits
        if num_keys * per_key > n:
            raise InvalidInstance(
                f"need {num_keys * per_key} committee nodes "
                f"({num_keys} keys x {self.count_bits} bits x "
                f"{self.sum_bits} copies) but n={n}; Section 6.3 requires "
                "K <= n / (bits^2)"
            )
        self.per_key = per_key

    def handler(self, key: int, bit: int, copy: int) -> int:
        """Node handling copy ``copy`` of bit ``bit`` of key ``key``."""
        return key * self.per_key + bit * self.sum_bits + copy

    def decode(self, node: int):
        """Inverse of :meth:`handler`, or ``None`` if ``node`` is idle."""
        if node >= self.num_keys * self.per_key:
            return None
        key, rest = divmod(node, self.per_key)
        bit, copy = divmod(rest, self.sum_bits)
        return key, bit, copy


def small_key_program(
    n: int,
    counts_by_node: Sequence[Sequence[int]],
    num_keys: int,
    max_count: int,
) -> Callable[[NodeContext], Generator]:
    """Program factory; ``counts_by_node[v][kappa]`` = v's copies of kappa."""
    layout = SmallKeyLayout(n, num_keys, max_count)

    def program(ctx: NodeContext) -> Generator:
        me = ctx.node_id
        my_counts = list(counts_by_node[me])
        if len(my_counts) != num_keys:
            raise InvalidInstance("count vector length != num_keys")

        # Round 1: bit i of my multiplicity of key kappa to every copy
        # handler of (kappa, i).  One-bit payloads.
        ctx.enter_phase("s63.bits")
        outbox: Dict[int, Packet] = {}
        for kappa in range(num_keys):
            if my_counts[kappa] > max_count:
                raise InvalidInstance("multiplicity exceeds max_count")
            for bit in range(layout.count_bits):
                value = (my_counts[kappa] >> bit) & 1
                for copy in range(layout.sum_bits):
                    outbox[layout.handler(kappa, bit, copy)] = Packet(
                        (value,)
                    )
        # Multiple (kappa, bit) pairs never share a handler, so one packet
        # per destination; but *this node* addresses each handler once only
        # because handlers are distinct per (kappa, bit, copy).
        inbox = yield outbox

        # Handler role: count ones, remember who sent them (for prefixes).
        role = layout.decode(me)
        senders_with_one: List[int] = []
        if role is not None:
            for src in sorted(inbox):
                if inbox[src].words[0]:
                    senders_with_one.append(src)

        # Round 2: handler (kappa, bit, copy=j) sends node k two bits — the
        # j-th bit of the total one-count and of the one-count over senders
        # < k.
        ctx.enter_phase("s63.aggregate")
        outbox = {}
        if role is not None:
            _kappa, _bit, j = role
            total_ones = len(senders_with_one)
            prefix = 0
            ones = sorted(senders_with_one)
            p = 0
            for k in range(n):
                while p < len(ones) and ones[p] < k:
                    p += 1
                outbox[k] = Packet(
                    ((total_ones >> j) & 1, (p >> j) & 1)
                )
        inbox = yield outbox

        # Reconstruct per-key totals and my prefix (copies at nodes < me).
        totals = [0] * num_keys
        prefixes = [0] * num_keys
        for src, pkt in inbox.items():
            decoded = layout.decode(src)
            if decoded is None:
                raise ProtocolError(f"bit from idle node {src}")
            kappa, bit, j = decoded
            tot_bit, pre_bit = pkt.words
            totals[kappa] += (tot_bit << j) << bit
            prefixes[kappa] += (pre_bit << j) << bit

        # Global rank of my t-th copy of kappa:
        # sum of totals of smaller keys + my prefix + t.
        smaller = 0
        ranks: Dict[int, List[int]] = {}
        for kappa in range(num_keys):
            base = smaller + prefixes[kappa]
            ranks[kappa] = [
                base + t for t in range(my_counts[kappa])
            ]
            smaller += totals[kappa]
        return {"totals": totals, "ranks": ranks}

    return program


def sort_small_keys(
    n: int,
    counts_by_node: Sequence[Sequence[int]],
    num_keys: int,
    max_count: int,
    engine: "EngineSpec" = None,
) -> RunResult:
    """Order all key copies in 2 rounds (Section 6.3).

    Outputs per node: ``{"totals": [...], "ranks": {kappa: [global ranks of
    my copies]}}``.
    """
    clique = CongestedClique(n, capacity=4, engine=engine)
    return clique.run(
        small_key_program(n, counts_by_node, num_keys, max_count)
    )
