"""Section 6: varying message and key sizes."""

from .large_messages import WideMessage, route_wide_messages
from .small_keys import (
    ROUNDS_SMALL_KEYS,
    SmallKeyLayout,
    small_key_program,
    sort_small_keys,
)

__all__ = [
    "WideMessage",
    "route_wide_messages",
    "SmallKeyLayout",
    "small_key_program",
    "sort_small_keys",
    "ROUNDS_SMALL_KEYS",
]
