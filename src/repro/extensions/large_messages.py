"""Section 6.1: messages of omega(log n) bits via fragmentation.

A payload of ``F`` words splits into ``F`` single-word fragments that are
routed independently and reassembled at the destination.  Two schedules:

* ``sequential=True`` — ``F`` back-to-back 16-round instances: round count
  ``16 * F`` at unchanged message size.  This matches constrained-bandwidth
  deployments (``B = Theta(log n)`` bits).
* ``sequential=False`` — one 16-round run whose per-node load is ``F * n``
  messages, bundled into ``ceil(F)`` lanes: the constant-factor message-size
  increase trades back the rounds.

Either way the total bits per node are ``Theta(F * n log n)``, which Section
6.1 argues is the true cost driver.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.errors import InvalidInstance
from ..core.network import CongestedClique
from ..routing.lenzen import _wire, header_base, lenzen_wire_program
from ..routing.problem import Message


class WideMessage:
    """A routable message with a multi-word payload."""

    def __init__(self, source: int, dest: int, seq: int, payload: Sequence[int]):
        self.source = source
        self.dest = dest
        self.seq = seq
        self.payload = tuple(payload)


def _fragment(
    n: int, wide: Sequence[Sequence[WideMessage]], width: int
) -> List[List[Message]]:
    frags: List[List[Message]] = [[] for _ in range(n)]
    for i, msgs in enumerate(wide):
        for m in msgs:
            if len(m.payload) != width:
                raise InvalidInstance(
                    f"payload width {len(m.payload)} != declared {width}"
                )
            for f, word in enumerate(m.payload):
                frags[i].append(
                    Message(
                        source=m.source,
                        dest=m.dest,
                        seq=m.seq * width + f,
                        payload=word,
                    )
                )
    return frags


def route_wide_messages(
    n: int,
    wide_by_source: Sequence[Sequence[WideMessage]],
    payload_words: int,
    sequential: bool = False,
) -> Tuple[List[List[WideMessage]], int]:
    """Route wide messages; returns (deliveries per node, rounds used).

    Per-node message counts must not exceed ``n`` (the Problem 3.1 bound on
    logical messages); fragment counts then reach ``payload_words * n``.
    """
    width = payload_words
    frags = _fragment(n, wide_by_source, width)
    load = width * n
    hbase = header_base(n, load)
    total_rounds = 0
    delivered_frags: List[List[Message]] = [[] for _ in range(n)]

    if sequential:
        # width batches of at most n fragments per node each; fragments are
        # renumbered with their logical sequence so each batch is a plain
        # (unexpanded) instance and the wire format stays single-lane.
        batch_base = header_base(n, n)
        for f in range(width):
            batch = [
                [
                    Message(m.source, m.dest, m.seq // width, m.payload)
                    for m in frags[i]
                    if m.seq % width == f
                ]
                for i in range(n)
            ]
            wire = [
                sorted(_wire(m, batch_base) for m in batch[i])
                for i in range(n)
            ]
            clique = CongestedClique(n, capacity=8)
            res = clique.run(
                lenzen_wire_program(n, wire, load_bound=n, strict=False)
            )
            total_rounds += res.rounds
            for k in range(n):
                delivered_frags[k].extend(
                    Message(m.source, m.dest, m.seq * width + f, m.payload)
                    for m in res.outputs[k]
                )
    else:
        wire = [sorted(_wire(m, hbase) for m in frags[i]) for i in range(n)]
        lanes = width
        clique = CongestedClique(n, capacity=max(8, 4 * lanes))
        res = clique.run(
            lenzen_wire_program(n, wire, load_bound=load, strict=False)
        )
        total_rounds = res.rounds
        delivered_frags = list(res.outputs)

    # Reassemble wide messages at each destination.
    out: List[List[WideMessage]] = [[] for _ in range(n)]
    for k in range(n):
        groups: Dict[Tuple[int, int], Dict[int, int]] = {}
        for m in delivered_frags[k]:
            logical_seq, f = divmod(m.seq, width)
            groups.setdefault((m.source, logical_seq), {})[f] = m.payload
        for (source, seq), parts in sorted(groups.items()):
            if len(parts) != width:
                raise InvalidInstance(
                    f"lost fragments of message ({source}, {seq})"
                )
            out[k].append(
                WideMessage(
                    source, k, seq, [parts[f] for f in range(width)]
                )
            )
    return out, total_rounds
